package intertubes

import (
	"encoding/json"
	"os"
	"sort"

	"intertubes/internal/fiber"
	"intertubes/internal/geo"
)

// annotated.go implements the paper's §8 future work: "annotated
// versions of our map, focusing in particular on traffic and
// propagation delay". Every published conduit is annotated with its
// tenancy, traceroute-derived traffic, propagation delay, and
// criticality, and the result can be exported as GeoJSON whose
// properties carry the annotations.

// ConduitAnnotation is the full per-conduit record of the annotated
// map.
type ConduitAnnotation struct {
	ID       int      `json:"id"`
	A        string   `json:"a"`
	B        string   `json:"b"`
	LengthKm float64  `json:"lengthKm"`
	DelayMs  float64  `json:"delayMs"` // one-way propagation
	Tenants  []string `json:"tenants"`
	Sharing  int      `json:"sharing"`
	// ProbesWestEast/ProbesEastWest are the traceroute overlay counts
	// (the traffic proxy of §4.3).
	ProbesWestEast int64 `json:"probesWestEast"`
	ProbesEastWest int64 `json:"probesEastWest"`
	// InferredTenants are providers seen on the conduit only through
	// traceroute naming hints.
	InferredTenants []string `json:"inferredTenants,omitempty"`
	// Betweenness is the conduit's shortest-path centrality.
	Betweenness float64 `json:"betweenness"`
}

// AnnotatedMap combines the risk matrix, the traceroute campaign, and
// the criticality analysis into one record per published conduit,
// sorted by descending total probes.
func (s *Study) AnnotatedMap() []ConduitAnnotation {
	m := s.res.Map
	camp := s.Campaign()
	bc := s.res.Map.Graph().EdgeBetweenness(m.LitWeight())

	var out []ConduitAnnotation
	for i := range m.Conduits {
		c := &m.Conduits[i]
		if len(c.Tenants) == 0 {
			continue
		}
		ann := ConduitAnnotation{
			ID:       int(c.ID),
			A:        m.Node(c.A).Key(),
			B:        m.Node(c.B).Key(),
			LengthKm: c.LengthKm,
			DelayMs:  geo.FiberLatencyMs(c.LengthKm),
			Tenants:  append([]string(nil), c.Tenants...),
			Sharing:  len(c.Tenants),
		}
		if d := camp.ConduitProbes[c.ID]; d != nil {
			ann.ProbesWestEast, ann.ProbesEastWest = d.WestEast, d.EastWest
		}
		for isp := range camp.InferredTenants[c.ID] {
			if !c.HasTenant(isp) {
				ann.InferredTenants = append(ann.InferredTenants, isp)
			}
		}
		sort.Strings(ann.InferredTenants)
		ann.Betweenness = bc[int(c.ID)]
		out = append(out, ann)
	}
	sort.Slice(out, func(i, j int) bool {
		ti := out[i].ProbesWestEast + out[i].ProbesEastWest
		tj := out[j].ProbesWestEast + out[j].ProbesEastWest
		if ti != tj {
			return ti > tj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ExportAnnotatedGeoJSON writes the annotated map as a GeoJSON
// FeatureCollection whose LineString properties carry every
// annotation.
func (s *Study) ExportAnnotatedGeoJSON(path string) error {
	raw, err := s.AnnotatedGeoJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// AnnotatedGeoJSON renders the annotated map as GeoJSON bytes.
func (s *Study) AnnotatedGeoJSON() ([]byte, error) {
	m := s.res.Map
	anns := s.AnnotatedMap()
	type feature struct {
		Type     string         `json:"type"`
		Geometry map[string]any `json:"geometry"`
		Props    map[string]any `json:"properties"`
	}
	doc := struct {
		Type     string    `json:"type"`
		Features []feature `json:"features"`
	}{Type: "FeatureCollection"}
	for _, ann := range anns {
		c := m.Conduit(fiber.ConduitID(ann.ID))
		coords := make([][2]float64, len(c.Path))
		for j, p := range c.Path {
			coords[j] = [2]float64{p.Lon, p.Lat}
		}
		doc.Features = append(doc.Features, feature{
			Type: "Feature",
			Geometry: map[string]any{
				"type":        "LineString",
				"coordinates": coords,
			},
			Props: map[string]any{
				"a":               ann.A,
				"b":               ann.B,
				"lengthKm":        ann.LengthKm,
				"delayMs":         ann.DelayMs,
				"tenants":         ann.Tenants,
				"sharing":         ann.Sharing,
				"probesWestEast":  ann.ProbesWestEast,
				"probesEastWest":  ann.ProbesEastWest,
				"inferredTenants": ann.InferredTenants,
				"betweenness":     ann.Betweenness,
			},
		})
	}
	return json.MarshalIndent(doc, "", " ")
}

// HighRiskHighTraffic returns the conduits in the top-k of both
// sharing and traffic — "those components of the long-haul fiber-optic
// infrastructure which experience high levels of infrastructure
// sharing as well as high volumes of traffic" (the paper's §1
// framing of its second contribution).
func (s *Study) HighRiskHighTraffic(k int) []ConduitAnnotation {
	anns := s.AnnotatedMap() // already traffic-sorted
	if k > len(anns) {
		k = len(anns)
	}
	topTraffic := anns[:k]
	bySharing := append([]ConduitAnnotation(nil), anns...)
	sort.Slice(bySharing, func(i, j int) bool {
		if bySharing[i].Sharing != bySharing[j].Sharing {
			return bySharing[i].Sharing > bySharing[j].Sharing
		}
		return bySharing[i].ID < bySharing[j].ID
	})
	topShared := make(map[int]bool, k)
	for i := 0; i < k && i < len(bySharing); i++ {
		topShared[bySharing[i].ID] = true
	}
	var out []ConduitAnnotation
	for _, ann := range topTraffic {
		if topShared[ann.ID] {
			out = append(out, ann)
		}
	}
	return out
}
