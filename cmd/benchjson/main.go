// Command benchjson converts the test2json stream of a
// `go test -bench -json` run into a compact machine-readable summary:
// one record per benchmark with its iteration count and every
// reported metric (ns/op, B/op, allocs/op, custom units).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -json ./... | benchjson -o BENCH_obs.json
//
// scripts/bench.sh wraps exactly that pipeline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// event is the subset of test2json's record we consume.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// Result is one parsed benchmark line.
type Result struct {
	Package string             `json:"package"`
	Name    string             `json:"name"`
	N       int64              `json:"n"`
	Metrics map[string]float64 `json:"metrics"`
}

// Summary is the file benchjson writes.
type Summary struct {
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, errOut io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "BENCH_obs.json", "output file")
	baseline := fs.String("baseline", "", "baseline summary to compare against (fails on ns/op regressions)")
	tolerance := fs.Float64("tolerance", 0.25, "allowed fractional ns/op slowdown vs -baseline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sum, err := parseStream(in)
	if err != nil {
		return err
	}
	deriveOverheadRatios(sum)
	deriveCellRates(sum)
	raw, err := json.MarshalIndent(sum, "", " ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(errOut, "benchjson: %d benchmarks -> %s\n", len(sum.Benchmarks), *out)
	if *baseline != "" {
		return compareBaseline(sum, *baseline, *tolerance, errOut)
	}
	return nil
}

// compareBaseline checks every benchmark present in both the new
// summary and the baseline file: a ns/op more than tolerance above
// the baseline's is a regression, and one or more regressions fail
// the run. Benchmarks present on only one side are ignored — the
// gate compares named pairs, it does not require identical suites.
func compareBaseline(sum *Summary, path string, tolerance float64, errOut io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Summary
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	old := make(map[string]float64)
	for _, r := range base.Benchmarks {
		if ns := r.Metrics["ns/op"]; ns > 0 {
			old[r.Package+" "+r.Name] = ns
		}
	}
	regressions := 0
	compared := 0
	for _, r := range sum.Benchmarks {
		ns := r.Metrics["ns/op"]
		oldNs, ok := old[r.Package+" "+r.Name]
		if !ok || ns <= 0 {
			continue
		}
		compared++
		if ns > oldNs*(1+tolerance) {
			regressions++
			fmt.Fprintf(errOut, "benchjson: REGRESSION %s %s: %.0f ns/op vs baseline %.0f (+%.0f%%, tolerance %.0f%%)\n",
				r.Package, r.Name, ns, oldNs, (ns/oldNs-1)*100, tolerance*100)
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%d of %d compared benchmarks regressed >%.0f%% vs %s", regressions, compared, tolerance*100, path)
	}
	fmt.Fprintf(errOut, "benchjson: %d benchmarks within %.0f%% of %s\n", compared, tolerance*100, path)
	return nil
}

// parseStream reads a test2json stream and collects every benchmark
// result line. Non-JSON lines (plain `go test` output piped in by
// mistake) are tolerated: they are scanned as bare text.
//
// test2json flushes partial lines: a slow benchmark emits its name
// ("BenchmarkX   \t") as one output event and the stats as a later
// one. Output is therefore reassembled into whole lines per package
// before parsing, keyed by package so interleaved `./...` streams
// cannot corrupt each other.
func parseStream(in io.Reader) (*Summary, error) {
	sum := &Summary{Benchmarks: []Result{}}
	partial := make(map[string]string)
	emit := func(pkg, line string) {
		if r, ok := parseBenchLine(pkg, line); ok {
			sum.Benchmarks = append(sum.Benchmarks, r)
		}
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			ev = event{Action: "output", Output: line + "\n"}
		}
		if ev.Action != "output" {
			continue
		}
		buf := partial[ev.Package] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			emit(ev.Package, buf[:nl])
			buf = buf[nl+1:]
		}
		partial[ev.Package] = buf
	}
	// Trailing unterminated output still counts (bare-text input with
	// no final newline).
	for pkg, buf := range partial {
		if buf != "" {
			emit(pkg, buf)
		}
	}
	return sum, sc.Err()
}

// deriveOverheadRatios appends a synthetic result for every
// ".../recorder=on" benchmark with a same-package ".../recorder=off"
// sibling: "<base>/recorder-overhead" carrying the on/off ns-per-op
// ratio. The tracing acceptance bar (enabled recorder <= 1.05x) reads
// straight off this record in BENCH_obs.json.
func deriveOverheadRatios(sum *Summary) {
	const onSuffix, offSuffix = "/recorder=on", "/recorder=off"
	off := make(map[string]float64)
	for _, r := range sum.Benchmarks {
		if strings.HasSuffix(r.Name, offSuffix) {
			off[r.Package+" "+strings.TrimSuffix(r.Name, offSuffix)] = r.Metrics["ns/op"]
		}
	}
	for _, r := range sum.Benchmarks {
		if !strings.HasSuffix(r.Name, onSuffix) {
			continue
		}
		base := strings.TrimSuffix(r.Name, onSuffix)
		offNs := off[r.Package+" "+base]
		onNs := r.Metrics["ns/op"]
		if offNs <= 0 || onNs <= 0 {
			continue
		}
		sum.Benchmarks = append(sum.Benchmarks, Result{
			Package: r.Package,
			Name:    base + "/recorder-overhead",
			N:       r.N,
			Metrics: map[string]float64{"ratio": onNs / offNs},
		})
	}
}

// deriveCellRates folds a "cells/s" metric into every benchmark that
// reports a "cells" count (the grid-sweep benchmarks): the cells per
// iteration over the seconds per iteration. That is the jobs
// subsystem's headline throughput, read straight off BENCH_obs.json.
func deriveCellRates(sum *Summary) {
	for _, r := range sum.Benchmarks {
		cells, ns := r.Metrics["cells"], r.Metrics["ns/op"]
		if cells > 0 && ns > 0 {
			r.Metrics["cells/s"] = cells / (ns / 1e9)
		}
	}
}

// parseBenchLine parses one benchmark result line of the form
//
//	BenchmarkName-8   120   9876543 ns/op   456 B/op   7 allocs/op
//
// returning ok=false for anything else (headers, PASS lines, logs).
// The trailing -N GOMAXPROCS suffix is stripped from the name so
// summaries diff cleanly across machines with different core counts.
func parseBenchLine(pkg, line string) (Result, bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Package: pkg, Name: stripCPUSuffix(fields[0]), N: n, Metrics: map[string]float64{}}
	// Remaining fields come in (value, unit) pairs.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Result{}, false
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[rest[i+1]] = v
	}
	return r, true
}

// stripCPUSuffix removes the "-8" style GOMAXPROCS suffix go test
// appends to benchmark names. Only an all-digit run after the final
// dash is removed, so names like "Benchmark.../workers=2" survive.
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}
