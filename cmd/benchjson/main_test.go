package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("intertubes",
		"BenchmarkFigure1_MapConstruction-8 \t     120\t   9876543 ns/op\t  456 B/op\t   7 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Name != "BenchmarkFigure1_MapConstruction" || r.N != 120 {
		t.Errorf("parsed = %+v", r)
	}
	want := map[string]float64{"ns/op": 9876543, "B/op": 456, "allocs/op": 7}
	for unit, v := range want {
		if r.Metrics[unit] != v {
			t.Errorf("%s = %v, want %v", unit, r.Metrics[unit], v)
		}
	}
}

func TestParseBenchLineRejects(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"goos: linux",
		"BenchmarkBroken-8",     // no fields
		"BenchmarkOdd-8 10 123", // dangling value without unit
		"BenchmarkBadN-8 ten 123 ns/op",
		"ok  \tintertubes\t1.2s",
	} {
		if _, ok := parseBenchLine("p", line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestStripCPUSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkA-8":                         "BenchmarkA",
		"BenchmarkA-16":                        "BenchmarkA",
		"BenchmarkA":                           "BenchmarkA",
		"BenchmarkWorkersCampaign/workers=2-8": "BenchmarkWorkersCampaign/workers=2",
		"BenchmarkAblation/buffer-10km":        "BenchmarkAblation/buffer-10km", // non-numeric tail kept
		"BenchmarkOdd-":                        "BenchmarkOdd-",
	} {
		if got := stripCPUSuffix(in); got != want {
			t.Errorf("stripCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseStream(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"start","Package":"intertubes"}`,
		`{"Action":"output","Package":"intertubes","Output":"goos: linux\n"}`,
		`{"Action":"output","Package":"intertubes","Output":"BenchmarkA-4   100   50000 ns/op\n"}`,
		`{"Action":"output","Package":"intertubes/internal/par","Output":"BenchmarkB-4   7   1.5 items/s\n"}`,
		`{"Action":"pass","Package":"intertubes"}`,
		`not json at all`,
	}, "\n")
	sum, err := parseStream(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d", len(sum.Benchmarks))
	}
	if sum.Benchmarks[0].Name != "BenchmarkA" || sum.Benchmarks[0].Metrics["ns/op"] != 50000 {
		t.Errorf("first = %+v", sum.Benchmarks[0])
	}
	if sum.Benchmarks[1].Package != "intertubes/internal/par" {
		t.Errorf("second package = %q", sum.Benchmarks[1].Package)
	}
}

// TestParseStreamSplitLines covers test2json's partial-line flushing:
// a slow benchmark's name and stats arrive as separate output events
// (no newline between them) and must be reassembled per package.
func TestParseStreamSplitLines(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"output","Package":"intertubes","Output":"BenchmarkSlow   \t"}`,
		`{"Action":"output","Package":"intertubes/other","Output":"BenchmarkOther-4 3 7 ns/op\n"}`,
		`{"Action":"output","Package":"intertubes","Output":"       1\t     28045 ns/op\t   19648 B/op\t      15 allocs/op\n"}`,
	}, "\n")
	sum, err := parseStream(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %+v", sum.Benchmarks)
	}
	if sum.Benchmarks[0].Name != "BenchmarkOther" {
		t.Errorf("first = %+v", sum.Benchmarks[0])
	}
	slow := sum.Benchmarks[1]
	if slow.Name != "BenchmarkSlow" || slow.N != 1 || slow.Metrics["allocs/op"] != 15 {
		t.Errorf("reassembled = %+v", slow)
	}
}

// TestParseStreamScenarioPairs covers the clone-vs-overlay scenario
// benchmarks: each path is a sub-benchmark, the CPU suffix strips off
// the sub-name, and BENCH_obs.json ends up holding both sides of each
// pair so the overlay speedup ratio can be read straight from it.
func TestParseStreamScenarioPairs(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"output","Package":"intertubes","Output":"BenchmarkScenarioEvaluate/clone-8   \t      30\t  37168390 ns/op\n"}`,
		`{"Action":"output","Package":"intertubes","Output":"BenchmarkScenarioEvaluate/overlay-8 \t     900\t   1311498 ns/op\n"}`,
		`{"Action":"output","Package":"intertubes","Output":"BenchmarkScenarioSweep/clone-8      \t       2\t 687559410 ns/op\t        16.00 scenarios/op\n"}`,
		`{"Action":"output","Package":"intertubes","Output":"BenchmarkScenarioSweep/overlay-8    \t      66\t  17425461 ns/op\t        16.00 scenarios/op\n"}`,
	}, "\n")
	sum, err := parseStream(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	nsOf := map[string]float64{}
	for _, b := range sum.Benchmarks {
		nsOf[b.Name] = b.Metrics["ns/op"]
	}
	for _, pair := range []string{"BenchmarkScenarioEvaluate", "BenchmarkScenarioSweep"} {
		clone, overlay := nsOf[pair+"/clone"], nsOf[pair+"/overlay"]
		if clone == 0 || overlay == 0 {
			t.Fatalf("%s pair incomplete: %+v", pair, nsOf)
		}
		if clone <= overlay {
			t.Errorf("%s: clone %v ns/op not slower than overlay %v ns/op", pair, clone, overlay)
		}
	}
	if v := nsOf["BenchmarkScenarioSweep/overlay"]; v != 17425461 {
		t.Errorf("sweep overlay ns/op = %v", v)
	}
}

// TestDeriveOverheadRatios pins the synthetic recorder-overhead record:
// a recorder=on/off pair in the same package yields a
// "<base>/recorder-overhead" result carrying the on/off ns-per-op
// ratio, and unpaired or cross-package results derive nothing.
func TestDeriveOverheadRatios(t *testing.T) {
	sum := &Summary{Benchmarks: []Result{
		{Package: "intertubes", Name: "BenchmarkTracingOverhead/recorder=off", N: 800, Metrics: map[string]float64{"ns/op": 1400000}},
		{Package: "intertubes", Name: "BenchmarkTracingOverhead/recorder=on", N: 780, Metrics: map[string]float64{"ns/op": 1442000}},
		{Package: "other", Name: "BenchmarkLonely/recorder=on", N: 10, Metrics: map[string]float64{"ns/op": 50}},
	}}
	deriveOverheadRatios(sum)
	if len(sum.Benchmarks) != 4 {
		t.Fatalf("benchmarks = %d, want 4 (one derived): %+v", len(sum.Benchmarks), sum.Benchmarks)
	}
	d := sum.Benchmarks[3]
	if d.Package != "intertubes" || d.Name != "BenchmarkTracingOverhead/recorder-overhead" {
		t.Errorf("derived = %+v", d)
	}
	ratio := d.Metrics["ratio"]
	if ratio < 1.029 || ratio > 1.031 {
		t.Errorf("ratio = %v, want 1442000/1400000 = 1.03", ratio)
	}
}

// TestDeriveOverheadRatiosEndToEnd checks the derivation rides the
// full parse pipeline, including CPU-suffix stripping on the
// sub-benchmark names.
func TestDeriveOverheadRatiosEndToEnd(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"output","Package":"intertubes","Output":"BenchmarkTracingOverhead/recorder=off-8 \t     847\t   1411775 ns/op\n"}`,
		`{"Action":"output","Package":"intertubes","Output":"BenchmarkTracingOverhead/recorder=on-8  \t     860\t   1382905 ns/op\n"}`,
	}, "\n")
	sum, err := parseStream(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	deriveOverheadRatios(sum)
	var got *Result
	for i := range sum.Benchmarks {
		if sum.Benchmarks[i].Name == "BenchmarkTracingOverhead/recorder-overhead" {
			got = &sum.Benchmarks[i]
		}
	}
	if got == nil {
		t.Fatalf("no derived record in %+v", sum.Benchmarks)
	}
	want := 1382905.0 / 1411775.0
	if r := got.Metrics["ratio"]; r < want-1e-9 || r > want+1e-9 {
		t.Errorf("ratio = %v, want %v", r, want)
	}
}

// TestDeriveCellRates pins the grid-sweep throughput derivation: a
// benchmark reporting a "cells" count gains a "cells/s" metric from
// its ns/op; results without the count are untouched.
func TestDeriveCellRates(t *testing.T) {
	sum := &Summary{Benchmarks: []Result{
		{Package: "intertubes", Name: "BenchmarkGridSweep", N: 3,
			Metrics: map[string]float64{"ns/op": 2e9, "cells": 50}},
		{Package: "intertubes", Name: "BenchmarkFigure8_Hamming", N: 100,
			Metrics: map[string]float64{"ns/op": 1e6}},
	}}
	deriveCellRates(sum)
	if got := sum.Benchmarks[0].Metrics["cells/s"]; got != 25 {
		t.Errorf("cells/s = %v, want 25", got)
	}
	if _, ok := sum.Benchmarks[1].Metrics["cells/s"]; ok {
		t.Errorf("cells/s derived without a cells count: %+v", sum.Benchmarks[1])
	}
}

func TestRunWritesFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	stream := `{"Action":"output","Package":"p","Output":"BenchmarkX-2 5 100 ns/op\n"}`
	var errBuf strings.Builder
	if err := run([]string{"-o", out}, strings.NewReader(stream), &errBuf); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var sum Summary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(sum.Benchmarks) != 1 || sum.Benchmarks[0].Name != "BenchmarkX" {
		t.Errorf("summary = %+v", sum)
	}
	if !strings.Contains(errBuf.String(), "1 benchmarks") {
		t.Errorf("stderr = %q", errBuf.String())
	}
}

func writeBaseline(t *testing.T, sum Summary) string {
	t.Helper()
	raw, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareBaseline(t *testing.T) {
	base := writeBaseline(t, Summary{Benchmarks: []Result{
		{Package: "p", Name: "BenchmarkFast", Metrics: map[string]float64{"ns/op": 100}},
		{Package: "p", Name: "BenchmarkOnlyInBaseline", Metrics: map[string]float64{"ns/op": 50}},
	}})
	within := &Summary{Benchmarks: []Result{
		{Package: "p", Name: "BenchmarkFast", Metrics: map[string]float64{"ns/op": 120}},
		{Package: "p", Name: "BenchmarkNew", Metrics: map[string]float64{"ns/op": 999}},
	}}
	var errBuf strings.Builder
	if err := compareBaseline(within, base, 0.25, &errBuf); err != nil {
		t.Fatalf("+20%% within a 25%% tolerance failed: %v", err)
	}
	if !strings.Contains(errBuf.String(), "1 benchmarks within") {
		t.Errorf("stderr = %q, want exactly one compared benchmark", errBuf.String())
	}

	regressed := &Summary{Benchmarks: []Result{
		{Package: "p", Name: "BenchmarkFast", Metrics: map[string]float64{"ns/op": 130}},
	}}
	errBuf.Reset()
	err := compareBaseline(regressed, base, 0.25, &errBuf)
	if err == nil {
		t.Fatal("+30% past a 25% tolerance did not fail")
	}
	if !strings.Contains(errBuf.String(), "REGRESSION p BenchmarkFast") {
		t.Errorf("stderr = %q, want a named regression line", errBuf.String())
	}
}

func TestCompareBaselineViaRun(t *testing.T) {
	base := writeBaseline(t, Summary{Benchmarks: []Result{
		{Package: "p", Name: "BenchmarkX", Metrics: map[string]float64{"ns/op": 100}},
	}})
	out := filepath.Join(t.TempDir(), "bench.json")
	stream := `{"Action":"output","Package":"p","Output":"BenchmarkX-2 5 500 ns/op\n"}`
	var errBuf strings.Builder
	err := run([]string{"-o", out, "-baseline", base}, strings.NewReader(stream), &errBuf)
	if err == nil {
		t.Fatal("5x regression did not fail the run")
	}
	if _, statErr := os.Stat(out); statErr != nil {
		t.Errorf("summary not written despite regression: %v", statErr)
	}
}
