// Command tracegen runs the synthetic traceroute campaign of §4.3 and
// prints sample traces plus overlay statistics. It is the equivalent
// of the paper's Edgescope corpus plus the layer-3-to-conduit overlay.
//
// Usage:
//
//	tracegen [-seed N] [-workers N] [-n N] [-samples N] [-text]
//
// With -text the samples print in standard traceroute format (which
// traceroute.ParseText reads back).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"intertubes"
	"intertubes/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 42, "study seed (deterministic)")
		workers  = fs.Int("workers", 0, "worker pool for the campaign (0 = all CPUs; results identical)")
		n        = fs.Int("n", 100000, "number of traceroutes to synthesize")
		samples  = fs.Int("samples", 3, "raw traces to print")
		asText   = fs.Bool("text", false, "print samples in parseable traceroute text format")
		logLevel = fs.String("log-level", "info", "log level: debug, info, warn, error")
		verbose  = fs.Bool("v", false, "shorthand for -log-level debug")
		timings  = fs.Bool("timings", false, "print the per-stage build report after the artifacts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := obs.ConfigureLogging(*verbose, *logLevel); err != nil {
		return err
	}

	study := intertubes.NewStudy(intertubes.Options{Seed: *seed, Probes: *n, Workers: *workers})
	camp := study.Campaign()

	fmt.Fprintf(out, "campaign: %d traceroutes with long-haul transit (of %d requested)\n",
		camp.Total, *n)
	fmt.Fprintf(out, "conduits observed carrying probes: %d\n", len(camp.ConduitProbes))
	fmt.Fprintf(out, "unattributed segments: %d\n", camp.Unattributed)
	fmt.Fprintf(out, "overlay attribution accuracy vs ground truth: %.1f%%\n\n",
		100*camp.AttributionAccuracy())

	atlasCities := study.Result().Atlas.Cities
	for i, tr := range camp.Samples {
		if i >= *samples {
			break
		}
		if *asText {
			fmt.Fprintln(out, camp.FormatText(tr))
			continue
		}
		fmt.Fprintf(out, "traceroute %s -> %s (transit: %s", atlasCities[tr.SrcCity].Key(),
			atlasCities[tr.DstCity].Key(), tr.ISP)
		if tr.PeerISP != "" {
			fmt.Fprintf(out, " then %s", tr.PeerISP)
		}
		if tr.MPLS {
			fmt.Fprintf(out, ", MPLS tunnel")
		}
		fmt.Fprintln(out, ")")
		for h, hop := range tr.Hops {
			name := hop.Name
			if name == "" {
				name = "* (no rDNS)"
			}
			fmt.Fprintf(out, "  %2d  %-40s %6.2f ms\n", h+1, name, hop.RTTms)
		}
		fmt.Fprintln(out)
	}
	if *timings {
		fmt.Fprint(out, study.BuildReport())
	}
	return nil
}
