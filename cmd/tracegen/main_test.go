package main

import (
	"strings"
	"testing"

	"intertubes/internal/traceroute"
)

func TestRunSummaryAndSamples(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "3000", "-samples", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "campaign:") || !strings.Contains(s, "attribution accuracy") {
		t.Errorf("missing summary:\n%s", s)
	}
	if strings.Count(s, "traceroute ") < 2 {
		t.Errorf("expected 2 samples:\n%s", s)
	}
}

func TestRunTextModeParsesBack(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "3000", "-samples", "3", "-text"}, &out); err != nil {
		t.Fatal(err)
	}
	// The -text output must round-trip through the parser.
	body := out.String()
	idx := strings.Index(body, "traceroute to ")
	if idx < 0 {
		t.Fatalf("no text traces:\n%s", body)
	}
	traces, err := traceroute.ParseText(strings.NewReader(body[idx:]))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Errorf("parsed %d traces, want 3", len(traces))
	}
}
