package main

import (
	"strings"
	"testing"
)

func TestRunFig10AndTable5(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig10", "-table5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 10") || !strings.Contains(out.String(), "Table 5") {
		t.Errorf("missing artifacts:\n%s", out.String())
	}
	if strings.Contains(out.String(), "Figure 11") {
		t.Error("unselected Figure 11 rendered")
	}
}

func TestRunFig11SmallK(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig11", "-k", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "k=2") {
		t.Errorf("sweep should reach k=2:\n%s", out.String())
	}
}
