// Command mitigate runs the §5 risk-mitigation analyses: the
// robustness-suggestion framework over the most heavily shared
// conduits (Figure 10, Table 5), the k-new-conduits sweep
// (Figure 11), and the propagation-delay study with proposed
// ROW-following builds (Figure 12).
//
// Usage:
//
//	mitigate [-seed N] [-workers N] [-k N] [-fig10] [-table5] [-fig11] [-fig12]
//
// With no selection flags it renders everything in §5 order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"intertubes"
	"intertubes/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mitigate:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mitigate", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 42, "study seed (deterministic)")
		workers  = fs.Int("workers", 0, "worker pool for the analysis stages (0 = all CPUs; results identical)")
		k        = fs.Int("k", 10, "number of new conduits for the Figure 11 sweep")
		fig10    = fs.Bool("fig10", false, "Figure 10: path inflation and shared-risk reduction")
		table5   = fs.Bool("table5", false, "Table 5: suggested peerings")
		fig11    = fs.Bool("fig11", false, "Figure 11: improvement vs conduits added")
		fig12    = fs.Bool("fig12", false, "Figure 12: latency CDFs and proposed ROW builds")
		logLevel = fs.String("log-level", "info", "log level: debug, info, warn, error")
		verbose  = fs.Bool("v", false, "shorthand for -log-level debug")
		timings  = fs.Bool("timings", false, "print the per-stage build report after the artifacts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := obs.ConfigureLogging(*verbose, *logLevel); err != nil {
		return err
	}

	study := intertubes.NewStudy(intertubes.Options{Seed: *seed, AddConduits: *k, Workers: *workers})

	any := *fig10 || *table5 || *fig11 || *fig12
	show := func(selected bool, render func() string) {
		if selected || !any {
			fmt.Fprintln(out, render())
		}
	}
	show(*fig10, study.RenderFigure10)
	show(*table5, study.RenderTable5)
	show(*fig11, study.RenderFigure11)
	show(*fig12, study.RenderFigure12)
	if *timings {
		fmt.Fprint(out, study.BuildReport())
	}
	return nil
}
