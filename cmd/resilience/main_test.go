package main

import (
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-k", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"criticality", "cutting 4 conduits", "Minimum conduit cuts"} {
		if !strings.Contains(out.String(), marker) {
			t.Errorf("missing %q", marker)
		}
	}
}
