package main

import (
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-k", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"criticality", "cutting 4 conduits", "Minimum conduit cuts"} {
		if !strings.Contains(out.String(), marker) {
			t.Errorf("missing %q", marker)
		}
	}
}

func TestRunTimings(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-k", "2", "-timings"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"stage", "wall", "study.resilience"} {
		if !strings.Contains(out.String(), marker) {
			t.Errorf("timings output missing %q", marker)
		}
	}
}

func TestRunDisaster(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-k", "2", "-disaster", "29.95,-90.07,350"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"regional-disaster", "conduits cut", "Per-provider disconnection"} {
		if !strings.Contains(out.String(), marker) {
			t.Errorf("disaster output missing %q", marker)
		}
	}
}

func TestRunBadDisaster(t *testing.T) {
	if err := run([]string{"-disaster", "not-a-region"}, &strings.Builder{}); err == nil {
		t.Error("expected error for malformed -disaster")
	}
}

func TestRunBadLogLevel(t *testing.T) {
	if err := run([]string{"-log-level", "shouting"}, &strings.Builder{}); err == nil {
		t.Error("expected error for unknown log level")
	}
}
