// Command resilience runs the fiber-cut robustness analyses that the
// paper motivates in §4 and defers to future work: conduit
// criticality, targeted-vs-random cut impact, and per-provider
// partition costs.
//
// Usage:
//
//	resilience [-seed N] [-k N] [-disaster lat,lon,radiusKm]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"intertubes"
	"intertubes/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "resilience:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("resilience", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 42, "study seed (deterministic)")
		workers  = fs.Int("workers", 0, "worker pool for the analysis stages (0 = all CPUs; results identical)")
		k        = fs.Int("k", 8, "number of conduits to cut in the strategy comparison")
		disaster = fs.String("disaster", "", "evaluate a regional disaster: lat,lon,radiusKm (e.g. 29.95,-90.07,350)")
		logLevel = fs.String("log-level", "info", "log level: debug, info, warn, error")
		verbose  = fs.Bool("v", false, "shorthand for -log-level debug")
		timings  = fs.Bool("timings", false, "print the per-stage build report after the artifacts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := obs.ConfigureLogging(*verbose, *logLevel); err != nil {
		return err
	}
	study := intertubes.NewStudy(intertubes.Options{Seed: *seed, Workers: *workers})
	fmt.Fprintln(out, study.RenderResilience(*k))
	if *disaster != "" {
		var lat, lon, radiusKm float64
		if _, err := fmt.Sscanf(*disaster, "%f,%f,%f", &lat, &lon, &radiusKm); err != nil {
			return fmt.Errorf("invalid -disaster %q (want lat,lon,radiusKm): %w", *disaster, err)
		}
		report, err := study.RenderDisaster(lat, lon, radiusKm)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, report)
	}
	if *timings {
		fmt.Fprint(out, study.BuildReport())
	}
	return nil
}
