// Command resilience runs the fiber-cut robustness analyses that the
// paper motivates in §4 and defers to future work: conduit
// criticality, targeted-vs-random cut impact, and per-provider
// partition costs.
//
// Usage:
//
//	resilience [-seed N] [-k N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"intertubes"
	"intertubes/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "resilience:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("resilience", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 42, "study seed (deterministic)")
		workers  = fs.Int("workers", 0, "worker pool for the analysis stages (0 = all CPUs; results identical)")
		k        = fs.Int("k", 8, "number of conduits to cut in the strategy comparison")
		logLevel = fs.String("log-level", "info", "log level: debug, info, warn, error")
		verbose  = fs.Bool("v", false, "shorthand for -log-level debug")
		timings  = fs.Bool("timings", false, "print the per-stage build report after the artifacts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := obs.ConfigureLogging(*verbose, *logLevel); err != nil {
		return err
	}
	study := intertubes.NewStudy(intertubes.Options{Seed: *seed, Workers: *workers})
	fmt.Fprintln(out, study.RenderResilience(*k))
	if *timings {
		fmt.Fprint(out, study.BuildReport())
	}
	return nil
}
