// Command intertubes builds the US long-haul fiber map (§2 of the
// paper) and reports its structure: Table 1, the Figure 1 summary, the
// Figure 4 co-location analysis, GeoJSON exports of the map and the
// road/rail/pipeline layers (Figures 1-3 as data), and the text
// dataset.
//
// Usage:
//
//	intertubes [-seed N] [-workers N] [-all] [-table1] [-step3]
//	           [-fig4] [-export DIR] [-dataset FILE]
//
// With no selection flags it prints the Figure 1 summary.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"intertubes"
	"intertubes/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "intertubes:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("intertubes", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 42, "study seed (deterministic)")
		workers  = fs.Int("workers", 0, "worker pool for the analysis stages (0 = all CPUs; results identical)")
		all      = fs.Bool("all", false, "render every table and figure of the paper")
		table1   = fs.Bool("table1", false, "render Table 1 (per-ISP nodes and links)")
		step3    = fs.Bool("step3", false, "render the step-3 POP-only additions")
		fig4     = fs.Bool("fig4", false, "render Figure 4 (transportation co-location)")
		export   = fs.String("export", "", "write GeoJSON layers into this directory")
		dataset  = fs.String("dataset", "", "write the map dataset (text format) to this file")
		logLevel = fs.String("log-level", "info", "log level: debug, info, warn, error")
		verbose  = fs.Bool("v", false, "shorthand for -log-level debug")
		timings  = fs.Bool("timings", false, "print the per-stage build report after the artifacts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := obs.ConfigureLogging(*verbose, *logLevel); err != nil {
		return err
	}

	study := intertubes.NewStudy(intertubes.Options{Seed: *seed, Workers: *workers})

	switch {
	case *all:
		fmt.Fprintln(out, study.RenderAll())
	default:
		printed := false
		if *table1 {
			fmt.Fprintln(out, study.RenderTable1())
			printed = true
		}
		if *step3 {
			fmt.Fprintln(out, study.RenderStep3())
			printed = true
		}
		if *fig4 {
			fmt.Fprintln(out, study.RenderFigure4())
			printed = true
		}
		if !printed {
			fmt.Fprintln(out, study.RenderFigure1())
		}
	}
	if *export != "" {
		if err := study.ExportGeoJSON(*export); err != nil {
			return fmt.Errorf("export: %w", err)
		}
		fmt.Fprintf(out, "wrote GeoJSON layers to %s\n", *export)
	}
	if *dataset != "" {
		if err := study.ExportDataset(*dataset); err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
		fmt.Fprintf(out, "wrote map dataset to %s\n", *dataset)
	}
	if *timings {
		fmt.Fprint(out, study.BuildReport())
	}
	return nil
}
