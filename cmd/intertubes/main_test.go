package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefault(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 1") {
		t.Errorf("default output missing Figure 1:\n%s", out.String())
	}
}

func TestRunSelections(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table1", "-step3", "-fig4"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"Table 1", "Step 3", "Figure 4"} {
		if !strings.Contains(out.String(), marker) {
			t.Errorf("missing %q", marker)
		}
	}
}

func TestRunExports(t *testing.T) {
	dir := t.TempDir()
	dataset := filepath.Join(dir, "map.txt")
	var out strings.Builder
	if err := run([]string{"-export", dir, "-dataset", dataset}, &out); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fibermap.geojson", "roads.geojson"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("%s not written: %v", f, err)
		}
	}
	if fi, err := os.Stat(dataset); err != nil || fi.Size() == 0 {
		t.Errorf("dataset not written: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, &strings.Builder{}); err == nil {
		t.Error("expected flag error")
	}
}
