package main

import (
	"strings"
	"testing"
)

func TestRunAll(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-probes", "3000"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"Figure 6", "Figure 7", "Figure 8", "Figure 9", "Table 2", "Table 3", "Table 4"} {
		if !strings.Contains(out.String(), marker) {
			t.Errorf("missing %q", marker)
		}
	}
}

func TestRunSelection(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-probes", "3000", "-fig6"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 6") {
		t.Error("missing Figure 6")
	}
	if strings.Contains(out.String(), "Table 4") {
		t.Error("unselected Table 4 rendered")
	}
}
