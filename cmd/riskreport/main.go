// Command riskreport runs the §4 shared-risk analyses: the risk
// matrix metrics (Figures 6-8) and the traceroute-overlay results
// (Figure 9, Tables 2-4).
//
// Usage:
//
//	riskreport [-seed N] [-probes N] [-fig6] [-fig7] [-fig8] [-fig9]
//	           [-table2] [-table3] [-table4] [-capacity]
//
// With no selection flags it renders everything in §4 order.
// -capacity additionally renders the capacity study (gravity-model
// demand stranded by cutting the most-shared conduits); it is never
// part of the default set because it sweeps a dozen cut scenarios.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"intertubes"
	"intertubes/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "riskreport:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("riskreport", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 42, "study seed (deterministic)")
		probes   = fs.Int("probes", 200000, "traceroute campaign size")
		workers  = fs.Int("workers", 0, "worker pool for the analysis stages (0 = all CPUs; results identical)")
		fig6     = fs.Bool("fig6", false, "Figure 6: conduits shared by >= k ISPs")
		fig7     = fs.Bool("fig7", false, "Figure 7: per-ISP average sharing")
		fig8     = fs.Bool("fig8", false, "Figure 8: Hamming-distance heat map")
		fig9     = fs.Bool("fig9", false, "Figure 9: sharing CDF with traffic overlay")
		table2   = fs.Bool("table2", false, "Table 2: top west-to-east conduits")
		table3   = fs.Bool("table3", false, "Table 3: top east-to-west conduits")
		table4   = fs.Bool("table4", false, "Table 4: top ISPs by conduits carrying probes")
		capac    = fs.Bool("capacity", false, "capacity study: gravity demand stranded by cutting the most-shared conduits")
		logLevel = fs.String("log-level", "info", "log level: debug, info, warn, error")
		verbose  = fs.Bool("v", false, "shorthand for -log-level debug")
		timings  = fs.Bool("timings", false, "print the per-stage build report after the artifacts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := obs.ConfigureLogging(*verbose, *logLevel); err != nil {
		return err
	}

	study := intertubes.NewStudy(intertubes.Options{Seed: *seed, Probes: *probes, Workers: *workers})

	any := *fig6 || *fig7 || *fig8 || *fig9 || *table2 || *table3 || *table4 || *capac
	show := func(selected bool, render func() string) {
		if selected || !any {
			fmt.Fprintln(out, render())
		}
	}
	show(*fig6, study.RenderFigure6)
	show(*fig7, study.RenderFigure7)
	show(*fig8, study.RenderFigure8)
	show(*fig9, study.RenderFigure9)
	show(*table2, study.RenderTable2)
	show(*table3, study.RenderTable3)
	show(*table4, study.RenderTable4)
	// The capacity study sweeps a dozen cut scenarios; render it only
	// on explicit request rather than in the render-everything default.
	if *capac {
		fmt.Fprintln(out, study.RenderCapacity())
	}
	if *timings {
		fmt.Fprint(out, study.BuildReport())
	}
	return nil
}
