// Command whatif evaluates declarative what-if scenarios against the
// constructed long-haul map: conduit cuts (explicit, most-shared,
// most-between, regional disasters), provider removal, and new conduit
// builds, reported as deltas against the baseline study.
//
// Usage:
//
//	whatif -preset gulf-hurricane
//	whatif -file scenario.json [-json]
//	whatif -list-presets
//	whatif -grid 400 -grid-radii 100,250 [-grid-format geojson] [-grid-out heat.json]
//
// A scenario file is the JSON form of scenario.Scenario, e.g.:
//
//	{"name": "gulf plus level3 exit",
//	 "preset": "gulf-hurricane",
//	 "removeISPs": ["Level 3"]}
//
// -grid switches to the exhaustive disaster-grid sweep: every cell of a
// CellKm-spaced lattice over the mapped conduits, crossed with the
// -grid-radii ladder, evaluated through an in-memory job store — the
// same machinery fibermapd serves at POST /api/jobs/sweep, minus the
// checkpoint directory. The artifact is the ASCII severity raster
// (-grid-format grid, the default) or the GeoJSON FeatureCollection
// (-grid-format geojson), written to -grid-out or stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"intertubes"
	"intertubes/internal/jobs"
	"intertubes/internal/obs"
	"intertubes/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "whatif:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("whatif", flag.ContinueOnError)
	var (
		seed        = fs.Int64("seed", 42, "study seed (deterministic)")
		workers     = fs.Int("workers", 0, "worker pool for the analysis stages (0 = all CPUs; results identical)")
		preset      = fs.String("preset", "", "evaluate a named preset scenario")
		file        = fs.String("file", "", "evaluate a scenario spec from a JSON file (- for stdin)")
		listPresets = fs.Bool("list-presets", false, "list the preset scenarios and exit")
		asJSON      = fs.Bool("json", false, "emit the full Result as JSON instead of the text report")
		logLevel    = fs.String("log-level", "info", "log level: debug, info, warn, error")
		verbose     = fs.Bool("v", false, "shorthand for -log-level debug")
		timings     = fs.Bool("timings", false, "print the per-stage build report after the artifacts")
		traceOut    = fs.String("trace", "", "write the evaluation's Chrome trace-event JSON to this file (load in Perfetto or chrome://tracing)")
		gridCell    = fs.Float64("grid", 0, "run an exhaustive disaster-grid sweep with this lattice spacing in km (0 = off)")
		gridRadii   = fs.String("grid-radii", "100,250", "comma-separated disaster-radius ladder in km for -grid")
		gridFormat  = fs.String("grid-format", "grid", "grid artifact format: grid (ASCII raster) or geojson")
		gridOut     = fs.String("grid-out", "", "write the grid artifact to this file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := obs.ConfigureLogging(*verbose, *logLevel); err != nil {
		return err
	}

	if *listPresets {
		for _, sc := range scenario.Presets() {
			fmt.Fprintf(out, "%-16s %s\n", sc.Name, describe(sc))
		}
		return nil
	}

	if *gridCell != 0 {
		if *preset != "" || *file != "" {
			return fmt.Errorf("-grid is a whole-map sweep; it cannot be combined with -preset or -file")
		}
		radii, err := parseRadii(*gridRadii)
		if err != nil {
			return err
		}
		if *gridFormat != "grid" && *gridFormat != "geojson" {
			return fmt.Errorf("-grid-format must be grid or geojson (got %q)", *gridFormat)
		}
		study := intertubes.NewStudy(intertubes.Options{Seed: *seed, Workers: *workers})
		spec := scenario.GridSpec{CellKm: *gridCell, RadiiKm: radii}
		return runGrid(study, spec, *workers, *gridFormat, *gridOut, out)
	}

	sc, err := loadScenario(*preset, *file)
	if err != nil {
		return err
	}

	study := intertubes.NewStudy(intertubes.Options{Seed: *seed, Workers: *workers})
	ctx := context.Background()
	var sp *obs.Span
	if *traceOut != "" {
		ctx, sp = obs.StartTrace(ctx, "whatif.evaluate")
	}
	res, err := study.WhatIf(ctx, sc)
	if *traceOut != "" {
		sp.End()
		if werr := writeTrace(*traceOut, sp.TraceID()); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", " ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(out, scenario.Render(res))
	}
	if *timings {
		fmt.Fprint(out, study.BuildReport())
	}
	return nil
}

// parseRadii parses the -grid-radii comma list; validation beyond
// syntax is the spec's job.
func parseRadii(s string) ([]float64, error) {
	var radii []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("-grid-radii: bad radius %q: %w", part, err)
		}
		radii = append(radii, r)
	}
	if len(radii) == 0 {
		return nil, fmt.Errorf("-grid-radii: at least one radius required")
	}
	return radii, nil
}

// runGrid runs the sweep through an in-memory job store — the exact
// path fibermapd's batch lane takes, so the CLI artifact is
// byte-identical to what GET /api/jobs/{id}/result would serve for the
// same spec and seed, at any worker count.
func runGrid(study *intertubes.Study, spec scenario.GridSpec, workers int, format, outPath string, out io.Writer) error {
	store, err := jobs.NewStore(study.Scenarios().Engine(), jobs.Options{Workers: workers})
	if err != nil {
		return err
	}
	defer store.Close()

	st, err := store.Submit(spec)
	if err != nil {
		return err
	}
	if st, err = store.Wait(st.ID); err != nil {
		return err
	}
	if st.State != jobs.StateDone {
		return fmt.Errorf("grid sweep %s ended %s: %s", st.ID, st.State, st.Err)
	}
	h, err := store.Heatmap(st.ID)
	if err != nil {
		return err
	}

	var raw []byte
	switch format {
	case "grid":
		raw = []byte(h.RenderGrid())
	case "geojson":
		if raw, err = h.GeoJSON(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("-grid-format must be grid or geojson (got %q)", format)
	}
	if outPath != "" {
		return os.WriteFile(outPath, raw, 0o644)
	}
	_, err = out.Write(raw)
	return err
}

// writeTrace renders the recorded evaluation as Chrome trace-event
// JSON. An empty trace ID means the recorder is disabled — surfaced
// as an error because the user explicitly asked for a trace.
func writeTrace(path, id string) error {
	if id == "" {
		return fmt.Errorf("-trace: flight recorder is disabled, no trace recorded")
	}
	tr, ok := obs.DefaultTraces.Get(id)
	if !ok {
		return fmt.Errorf("-trace: trace %s was not retained", id)
	}
	buf, err := tr.ChromeTrace()
	if err != nil {
		return fmt.Errorf("-trace: %w", err)
	}
	return os.WriteFile(path, buf, 0o644)
}

// loadScenario builds the scenario from the flags: a file spec, a
// preset name, or both (the file composes on top of the preset).
func loadScenario(preset, file string) (scenario.Scenario, error) {
	var sc scenario.Scenario
	switch {
	case file != "":
		var raw []byte
		var err error
		if file == "-" {
			raw, err = io.ReadAll(os.Stdin)
		} else {
			raw, err = os.ReadFile(file)
		}
		if err != nil {
			return sc, err
		}
		if err := json.Unmarshal(raw, &sc); err != nil {
			return sc, fmt.Errorf("parsing %s: %w", file, err)
		}
		if preset != "" {
			sc.Preset = preset
		}
	case preset != "":
		sc.Preset = preset
	default:
		return sc, fmt.Errorf("nothing to evaluate: pass -preset, -file, or -list-presets")
	}
	return sc, nil
}

// describe summarizes a preset's perturbation in one line.
func describe(sc scenario.Scenario) string {
	switch {
	case len(sc.Regions) > 0:
		r := sc.Regions[0]
		return fmt.Sprintf("regional disaster at (%.2f, %.2f), radius %.0f km", r.Lat, r.Lon, r.RadiusKm)
	case sc.CutMostShared > 0:
		return fmt.Sprintf("cut the %d most-shared conduits", sc.CutMostShared)
	case sc.CutMostBetween > 0:
		return fmt.Sprintf("cut the %d highest-betweenness conduits", sc.CutMostBetween)
	case len(sc.RemoveISPs) > 0:
		return fmt.Sprintf("remove provider(s): %v", sc.RemoveISPs)
	default:
		return "custom perturbation"
	}
}
