package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunListPresets(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list-presets"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"top12-cut", "gulf-hurricane", "level3-exit"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("missing preset %q in:\n%s", name, out.String())
		}
	}
}

func TestRunPreset(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-preset", "top12-cut"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"top12-cut", "conduits cut:    12", "Sharing distribution"} {
		if !strings.Contains(out.String(), marker) {
			t.Errorf("missing %q in:\n%s", marker, out.String())
		}
	}
}

func TestRunFileJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	spec := `{"name": "two cuts", "cutConduits": [0, 1]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-file", path, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Hash        string `json:"hash"`
		ConduitsCut int    `json:"conduitsCut"`
	}
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if res.Hash == "" || res.ConduitsCut != 2 {
		t.Errorf("unexpected result: %+v", res)
	}
}

func TestRunNoScenario(t *testing.T) {
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Error("expected an error when nothing is selected")
	}
}

func TestRunUnknownPreset(t *testing.T) {
	if err := run([]string{"-preset", "nope"}, &strings.Builder{}); err == nil {
		t.Error("expected an error for an unknown preset")
	}
}
