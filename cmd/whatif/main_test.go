package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunListPresets(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list-presets"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"top12-cut", "gulf-hurricane", "level3-exit"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("missing preset %q in:\n%s", name, out.String())
		}
	}
}

func TestRunPreset(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-preset", "top12-cut"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"top12-cut", "conduits cut:    12", "Sharing distribution"} {
		if !strings.Contains(out.String(), marker) {
			t.Errorf("missing %q in:\n%s", marker, out.String())
		}
	}
}

func TestRunFileJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sc.json")
	spec := `{"name": "two cuts", "cutConduits": [0, 1]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-file", path, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Hash        string `json:"hash"`
		ConduitsCut int    `json:"conduitsCut"`
	}
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if res.Hash == "" || res.ConduitsCut != 2 {
		t.Errorf("unexpected result: %+v", res)
	}
}

// TestRunTraceRoundTrip pins the -trace flag: the written file must be
// valid Chrome trace-event JSON (an object with a traceEvents array of
// ph/ts events) containing the evaluation's stage spans, so it loads
// in Perfetto or chrome://tracing as-is.
func TestRunTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out strings.Builder
	if err := run([]string{"-preset", "top12-cut", "-trace", path}, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("trace file is not valid trace-event JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("trace file has no events")
	}
	seen := map[string]bool{}
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Pid != 1 || ev.Tid < 1 || ev.Dur < 0 || ev.Ts < 0 {
				t.Errorf("malformed complete event %+v", ev)
			}
			seen[ev.Name] = true
		case "M", "i":
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	for _, want := range []string{"whatif.evaluate", "scenario.evaluate", "scenario.stage.partition"} {
		if !seen[want] {
			t.Errorf("trace missing span %q; saw %v", want, seen)
		}
	}
}

// TestRunGridGeoJSON pins the -grid local mode end to end: a small
// sweep runs through the in-memory job store and lands a complete
// GeoJSON FeatureCollection in -grid-out. The duplicate radius
// exercises spec canonicalization on the CLI path.
func TestRunGridGeoJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heat.json")
	var out strings.Builder
	err := run([]string{
		"-grid", "500", "-grid-radii", "80, 80",
		"-grid-format", "geojson", "-grid-out", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Type      string `json:"type"`
		Total     int    `json:"total"`
		Completed int    `json:"completed"`
		Features  []any  `json:"features"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("artifact is not JSON: %v", err)
	}
	if doc.Type != "FeatureCollection" || doc.Total == 0 ||
		doc.Completed != doc.Total || len(doc.Features) != doc.Total {
		t.Errorf("artifact %s: %d features, completed %d/%d",
			doc.Type, len(doc.Features), doc.Completed, doc.Total)
	}
	if out.Len() != 0 {
		t.Errorf("-grid-out set but stdout got %d bytes", out.Len())
	}
}

// TestRunGridFlagErrors covers the fail-fast rejections — none of
// these should get as far as building a study.
func TestRunGridFlagErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"with-preset": {"-grid", "500", "-preset", "top12-cut"},
		"bad-radii":   {"-grid", "500", "-grid-radii", "80,oops"},
		"no-radii":    {"-grid", "500", "-grid-radii", " , "},
		"bad-format":  {"-grid", "500", "-grid-format", "png"},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestRunNoScenario(t *testing.T) {
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Error("expected an error when nothing is selected")
	}
}

func TestRunUnknownPreset(t *testing.T) {
	if err := run([]string{"-preset", "nope"}, &strings.Builder{}); err == nil {
		t.Error("expected an error for an unknown preset")
	}
}
