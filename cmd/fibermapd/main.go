// Command fibermapd serves the constructed long-haul fiber map and its
// analyses over HTTP — the programmatic counterpart of the paper's
// public data release. See internal/server for the endpoint list.
//
// Usage:
//
//	fibermapd [-addr :8080] [-seed 42] [-probes 100000]
//
// The server builds the full study at startup (a few seconds) and then
// serves immutable results; SIGINT/SIGTERM drain connections
// gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"intertubes"
	"intertubes/internal/server"
)

func main() {
	logger := log.New(os.Stderr, "fibermapd ", log.LstdFlags)
	srv, err := setup(os.Args[1:], logger)
	if err != nil {
		logger.Fatal(err)
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", srv.Addr)
		errCh <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		logger.Printf("received %s, draining...", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("serve: %v", err)
		}
	}
}

// setup parses flags, builds the study, and returns a configured but
// not-yet-listening server.
func setup(args []string, logger *log.Logger) (*http.Server, error) {
	fs := flag.NewFlagSet("fibermapd", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		seed    = fs.Int64("seed", 42, "study seed")
		probes  = fs.Int("probes", 100000, "traceroute campaign size")
		workers = fs.Int("workers", 0, "worker pool for the analysis stages (0 = all CPUs; results identical)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	logger.Printf("building study (seed %d)...", *seed)
	start := time.Now()
	study := intertubes.NewStudy(intertubes.Options{Seed: *seed, Probes: *probes, Workers: *workers})
	handler := server.New(study, logger)
	logger.Printf("study ready in %s", time.Since(start).Round(time.Millisecond))

	return &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}, nil
}
