// Command fibermapd serves the constructed long-haul fiber map and its
// analyses over HTTP — the programmatic counterpart of the paper's
// public data release. See internal/server for the endpoint list.
//
// Usage:
//
//	fibermapd [-addr :8080] [-seed 42] [-probes 100000]
//	          [-log-level info] [-v] [-timings] [-debug-addr :6060]
//	          [-scenario-inflight 8] [-scenario-queue 16]
//	          [-jobs-dir /var/lib/fibermapd/jobs] [-jobs-workers 0]
//
// The server builds the full study at startup (a few seconds) and then
// serves immutable results; SIGINT/SIGTERM drain connections
// gracefully, and a failed listener drains its sibling before the
// process exits. -timings prints the per-stage build report after the
// study is ready; -debug-addr starts a second listener with pprof,
// expvar, and the Prometheus metrics. -scenario-inflight and
// -scenario-queue tune the admission limiter on the scenario routes
// (overflow is shed with 429 + Retry-After). -jobs-dir persists the
// batch sweep job store's checkpoints there, so a sweep interrupted by
// a restart resumes where it left off; without it jobs run in memory
// only. -jobs-workers sets the sweep's per-batch worker count
// (0 = all CPUs; artifacts are identical at any count).
package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"intertubes/internal/jobs"
	"intertubes/internal/obs"
	"intertubes/internal/server"

	"expvar"
	"flag"

	"intertubes"
)

func main() {
	logger := obs.Logger("fibermapd")
	srv, debugSrv, cleanup, err := setup(os.Args[1:], logger)
	if err != nil {
		logger.Error("setup failed", "err", err)
		os.Exit(1)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	code := serve(srv, debugSrv, logger, stop)
	// Listeners are drained; park any in-flight sweep behind its final
	// checkpoint so the next start resumes it.
	cleanup()
	os.Exit(code)
}

// listenerErr tags a listener failure with which listener it was, so
// the drain log reads unambiguously.
type listenerErr struct {
	name string
	err  error
}

// serve runs the API listener (and the debug listener, when
// configured) until a stop signal or the first listener failure, then
// drains every listener that is still serving before returning the
// process exit code.
//
// The drain-on-failure ordering is the point: if one listener fails at
// startup — the debug port already bound is the classic — the process
// must not exit with the other listener still holding live
// connections. Shutdown on the listener that failed is a harmless
// no-op, so both are always drained regardless of which one died.
func serve(srv, debugSrv *http.Server, logger *slog.Logger, stop <-chan os.Signal) int {
	errCh := make(chan listenerErr, 2)
	go func() {
		logger.Info("listening", "addr", srv.Addr)
		errCh <- listenerErr{name: "api", err: srv.ListenAndServe()}
	}()
	if debugSrv != nil {
		go func() {
			logger.Info("debug listener up", "addr", debugSrv.Addr)
			errCh <- listenerErr{name: "debug", err: debugSrv.ListenAndServe()}
		}()
	}

	shutdownAll := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("shutdown", "listener", "api", "err", err)
		}
		if debugSrv != nil {
			if err := debugSrv.Shutdown(ctx); err != nil {
				logger.Warn("shutdown", "listener", "debug", "err", err)
			}
		}
	}

	select {
	case sig := <-stop:
		logger.Info("draining", "signal", sig.String())
		shutdownAll()
		return 0
	case e := <-errCh:
		if errors.Is(e.err, http.ErrServerClosed) {
			// Someone shut a listener down cleanly out from under us;
			// drain the rest and exit clean.
			shutdownAll()
			return 0
		}
		logger.Error("serve failed", "listener", e.name, "err", e.err)
		shutdownAll()
		return 1
	}
}

// setup parses flags, builds the study, and returns the configured but
// not-yet-listening API server plus, when -debug-addr is set, a debug
// server exposing pprof, expvar, and /metrics. The cleanup function
// releases the job store after the listeners drain — for a persistent
// store that is the moment the in-flight sweep parks behind its final
// checkpoint.
func setup(args []string, logger *slog.Logger) (*http.Server, *http.Server, func(), error) {
	fs := flag.NewFlagSet("fibermapd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		seed      = fs.Int64("seed", 42, "study seed")
		probes    = fs.Int("probes", 100000, "traceroute campaign size")
		workers   = fs.Int("workers", 0, "worker pool for the analysis stages (0 = all CPUs; results identical)")
		logLevel  = fs.String("log-level", "info", "log level: debug, info, warn, error")
		verbose   = fs.Bool("v", false, "shorthand for -log-level debug")
		timings   = fs.Bool("timings", false, "print the per-stage build report after the study is built")
		debugAddr = fs.String("debug-addr", "", "optional listen address for pprof/expvar/metrics (e.g. :6060); empty disables")
		inFlight  = fs.Int("scenario-inflight", server.DefaultScenarioInFlight, "max concurrently evaluating scenario requests")
		queue     = fs.Int("scenario-queue", server.DefaultScenarioQueue, "scenario requests allowed to wait for a slot before 429 shedding")
		jobsDir   = fs.String("jobs-dir", "", "checkpoint directory for the batch sweep job store; sweeps resume across restarts (empty = in-memory only)")
		jobsWkrs  = fs.Int("jobs-workers", 0, "worker pool for batch sweep evaluation (0 = all CPUs; artifacts identical at any count)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, nil, nil, err
	}
	if err := obs.ConfigureLogging(*verbose, *logLevel); err != nil {
		return nil, nil, nil, err
	}

	// Runtime gauges (GC pauses, heap, goroutines, sched latency) ride
	// the registry for the process lifetime; the poller is cheap and
	// the stop function is intentionally dropped.
	obs.StartRuntimeMetrics(10 * time.Second)

	logger.Info("building study", "seed", *seed, "probes", *probes)
	start := time.Now()
	study := intertubes.NewStudy(intertubes.Options{Seed: *seed, Probes: *probes, Workers: *workers})

	// A -jobs-dir (or explicit worker count) gets a store built here so
	// its checkpoints outlive the process; otherwise the server owns a
	// default in-memory store and Close releases it either way.
	var store *jobs.Store
	if *jobsDir != "" || *jobsWkrs != 0 {
		var err error
		store, err = jobs.NewStore(study.Scenarios().Engine(),
			jobs.Options{Dir: *jobsDir, Workers: *jobsWkrs})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("job store: %w", err)
		}
		if *jobsDir != "" {
			logger.Info("job store ready", "dir", *jobsDir, "recovered", len(store.List()))
		}
	}
	handler := server.NewWithConfig(study, logger, server.Config{
		ScenarioInFlight: *inFlight,
		ScenarioQueue:    *queue,
		Jobs:             store,
	})
	cleanup := func() {
		handler.Close()
		if store != nil {
			store.Close()
		}
	}
	logger.Info("study ready", "elapsed", time.Since(start).Round(time.Millisecond))
	if *timings {
		fmt.Fprint(os.Stderr, study.BuildReport())
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	return srv, debugServer(*debugAddr), cleanup, nil
}

// debugServer wires the opt-in diagnostics listener: net/http/pprof,
// the expvar JSON dump, and the Prometheus exposition. Kept off the
// API listener so operators can firewall it separately.
func debugServer(addr string) *http.Server {
	if addr == "" {
		return nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", obs.ServeMetrics)
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
}
