package main

import (
	"io"
	"log"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestSetup(t *testing.T) {
	logger := log.New(io.Discard, "", 0)
	srv, err := setup([]string{"-addr", ":9999", "-probes", "2000"}, logger)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr != ":9999" {
		t.Errorf("addr = %q", srv.Addr)
	}
	// The wired handler serves without listening on a real port.
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz = %d %s", resp.StatusCode, body)
	}
}

func TestSetupBadFlags(t *testing.T) {
	if _, err := setup([]string{"-bogus"}, log.New(io.Discard, "", 0)); err == nil {
		t.Error("expected flag error")
	}
}
