package main

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"intertubes/internal/obs"
)

func quietLogger(t *testing.T) {
	t.Helper()
	obs.SetOutput(io.Discard)
	t.Cleanup(func() { obs.SetOutput(nil) })
}

func TestSetup(t *testing.T) {
	quietLogger(t)
	srv, debugSrv, err := setup([]string{"-addr", ":9999", "-probes", "2000"}, obs.Logger("test"))
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr != ":9999" {
		t.Errorf("addr = %q", srv.Addr)
	}
	if debugSrv != nil {
		t.Error("debug server should be nil without -debug-addr")
	}
	// The wired handler serves without listening on a real port.
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz = %d %s", resp.StatusCode, body)
	}
}

func TestSetupBadFlags(t *testing.T) {
	quietLogger(t)
	if _, _, err := setup([]string{"-bogus"}, obs.Logger("test")); err == nil {
		t.Error("expected flag error")
	}
}

func TestDebugServer(t *testing.T) {
	quietLogger(t)
	srv := debugServer(":0")
	if srv == nil {
		t.Fatal("expected a debug server")
	}
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s = %d", path, resp.StatusCode)
		}
	}
}
