package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"intertubes/internal/obs"
)

func quietLogger(t *testing.T) {
	t.Helper()
	obs.SetOutput(io.Discard)
	t.Cleanup(func() { obs.SetOutput(nil) })
}

func TestSetup(t *testing.T) {
	quietLogger(t)
	srv, debugSrv, cleanup, err := setup([]string{"-addr", ":9999", "-probes", "2000"}, obs.Logger("test"))
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if srv.Addr != ":9999" {
		t.Errorf("addr = %q", srv.Addr)
	}
	if debugSrv != nil {
		t.Error("debug server should be nil without -debug-addr")
	}
	// The wired handler serves without listening on a real port.
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz = %d %s", resp.StatusCode, body)
	}
}

func TestSetupBadFlags(t *testing.T) {
	quietLogger(t)
	if _, _, _, err := setup([]string{"-bogus"}, obs.Logger("test")); err == nil {
		t.Error("expected flag error")
	}
}

// TestSetupJobsDir pins the persistent-store wiring: with -jobs-dir,
// a sweep submitted over HTTP leaves a checkpoint file behind, and the
// cleanup function shuts the store down without losing it.
func TestSetupJobsDir(t *testing.T) {
	quietLogger(t)
	dir := t.TempDir()
	srv, _, cleanup, err := setup(
		[]string{"-probes", "2000", "-jobs-dir", dir, "-jobs-workers", "2"},
		obs.Logger("test"))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/api/jobs/sweep", "application/json",
		strings.NewReader(`{"cellKm": 500, "radiiKm": [80]}`))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: status %d, id %q, err %v", resp.StatusCode, st.ID, err)
	}

	// Wait for the sweep to finish, then park the store.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/api/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got struct {
			State string `json:"state"`
			Err   string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got.State == "done" {
			break
		}
		if got.State == "failed" || got.State == "canceled" {
			t.Fatalf("job ended %s (%s)", got.State, got.Err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
	cleanup()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !strings.Contains(entries[0].Name(), st.ID) {
		t.Errorf("checkpoint dir after shutdown: %v", entries)
	}
}

// occupiedAddr binds a port for the duration of the test and returns
// its address, so a server given that address fails to listen.
func occupiedAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l.Addr().String()
}

// drainObserved wires a Shutdown observation onto a server: the
// returned channel closes when (and only when) the server is drained.
func drainObserved(srv *http.Server) <-chan struct{} {
	ch := make(chan struct{})
	srv.RegisterOnShutdown(func() { close(ch) })
	return ch
}

func waitDrained(t *testing.T, name string, ch <-chan struct{}) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatalf("%s listener was not drained", name)
	}
}

// TestServeDebugFailureDrainsAPI pins the startup-failure fix: a debug
// listener that cannot bind must drain the API listener before the
// process exits, not abandon it mid-flight.
func TestServeDebugFailureDrainsAPI(t *testing.T) {
	quietLogger(t)
	srv := &http.Server{Addr: "127.0.0.1:0", Handler: http.NewServeMux()}
	debugSrv := &http.Server{Addr: occupiedAddr(t), Handler: http.NewServeMux()}
	apiDrained := drainObserved(srv)

	stop := make(chan os.Signal)
	if code := serve(srv, debugSrv, obs.Logger("test"), stop); code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	waitDrained(t, "api", apiDrained)
}

// TestServeAPIFailureDrainsDebug is the mirrored ordering: the API
// listener failing must drain the debug listener.
func TestServeAPIFailureDrainsDebug(t *testing.T) {
	quietLogger(t)
	srv := &http.Server{Addr: occupiedAddr(t), Handler: http.NewServeMux()}
	debugSrv := &http.Server{Addr: "127.0.0.1:0", Handler: http.NewServeMux()}
	debugDrained := drainObserved(debugSrv)

	stop := make(chan os.Signal)
	if code := serve(srv, debugSrv, obs.Logger("test"), stop); code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	waitDrained(t, "debug", debugDrained)
}

// TestServeSignalDrainsBoth covers the clean path: a stop signal
// drains both listeners and exits 0.
func TestServeSignalDrainsBoth(t *testing.T) {
	quietLogger(t)
	srv := &http.Server{Addr: "127.0.0.1:0", Handler: http.NewServeMux()}
	debugSrv := &http.Server{Addr: "127.0.0.1:0", Handler: http.NewServeMux()}
	apiDrained := drainObserved(srv)
	debugDrained := drainObserved(debugSrv)

	stop := make(chan os.Signal, 1)
	stop <- syscall.SIGTERM
	if code := serve(srv, debugSrv, obs.Logger("test"), stop); code != 0 {
		t.Errorf("exit code = %d, want 0", code)
	}
	waitDrained(t, "api", apiDrained)
	waitDrained(t, "debug", debugDrained)
}

// TestServeNoDebugSignal covers the common production shape: no debug
// listener configured.
func TestServeNoDebugSignal(t *testing.T) {
	quietLogger(t)
	srv := &http.Server{Addr: "127.0.0.1:0", Handler: http.NewServeMux()}
	apiDrained := drainObserved(srv)
	stop := make(chan os.Signal, 1)
	stop <- syscall.SIGTERM
	if code := serve(srv, nil, obs.Logger("test"), stop); code != 0 {
		t.Errorf("exit code = %d, want 0", code)
	}
	waitDrained(t, "api", apiDrained)
}

func TestDebugServer(t *testing.T) {
	quietLogger(t)
	srv := debugServer(":0")
	if srv == nil {
		t.Fatal("expected a debug server")
	}
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s = %d", path, resp.StatusCode)
		}
	}
}
