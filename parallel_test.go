package intertubes_test

// parallel_test.go is the serial-equivalence suite for the par-backed
// hot paths: every figure whose pipeline runs on the worker pool must
// render byte-identically for any worker count at the default seed.
// Figure 4 exercises geo.OverlapAnalyzer.AnalyzeAll, Figure 9 the
// parallel traceroute campaign, Figure 11 the AddConduits candidate
// scan, and Figure 12 the all-pairs latency sweep.

import (
	"runtime"
	"testing"

	"intertubes"
)

func renderParallelFigures(workers int) map[string]string {
	s := intertubes.NewStudy(intertubes.Options{
		Probes:          16000,
		LatencyMaxPairs: 300,
		AddConduits:     2,
		Workers:         workers,
	})
	return map[string]string{
		"Figure4":  s.RenderFigure4(),
		"Figure9":  s.RenderFigure9(),
		"Figure11": s.RenderFigure11(),
		"Figure12": s.RenderFigure12(),
	}
}

func TestFiguresByteIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the study three times")
	}
	base := renderParallelFigures(1)
	for name, text := range base {
		if len(text) == 0 {
			t.Fatalf("%s rendered empty at workers=1", name)
		}
	}
	counts := []int{2}
	if n := runtime.NumCPU(); n != 1 && n != 2 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		got := renderParallelFigures(workers)
		for name, want := range base {
			if got[name] != want {
				t.Errorf("workers=%d: %s differs from workers=1 output", workers, name)
			}
		}
	}
}
