package intertubes_test

// integration_test.go checks invariants that span modules: the map
// built by mapbuilder must be consistent with the atlas it came from,
// the risk matrix with the map, the traceroute overlay with both, and
// the mitigation analyses with the risk matrix. These are the
// contracts the paper's analysis chain silently depends on.

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"intertubes/internal/fiber"
	"intertubes/internal/mitigate"
	"intertubes/internal/records"
	"intertubes/internal/risk"
)

func TestIntegrationMapMatchesAtlas(t *testing.T) {
	s := study(t)
	res := s.Result()
	a := res.Atlas
	for i := range res.Map.Nodes {
		n := &res.Map.Nodes[i]
		if n.AtlasCity < 0 || n.AtlasCity >= len(a.Cities) {
			t.Fatalf("node %s has no atlas city", n.Key())
		}
		city := a.Cities[n.AtlasCity]
		if city.Key() != n.Key() {
			t.Errorf("node %s mapped to atlas city %s", n.Key(), city.Key())
		}
		if n.Loc != city.Loc {
			t.Errorf("node %s location drifted", n.Key())
		}
	}
	for i := range res.Map.Conduits {
		c := &res.Map.Conduits[i]
		if c.Corridor < 0 || c.Corridor >= len(a.Corridors) {
			t.Fatalf("conduit %d has no corridor", i)
		}
		corr := a.Corridors[c.Corridor]
		// The conduit connects the corridor's cities.
		na, nb := res.Map.Node(c.A), res.Map.Node(c.B)
		cityPair := map[string]bool{
			a.Cities[corr.A].Key(): true,
			a.Cities[corr.B].Key(): true,
		}
		if !cityPair[na.Key()] || !cityPair[nb.Key()] {
			t.Errorf("conduit %d endpoints %s-%s do not match corridor %s-%s",
				i, na.Key(), nb.Key(), a.Cities[corr.A].Key(), a.Cities[corr.B].Key())
		}
		// The conduit path stays within a few km of its corridor.
		if len(c.Path) > 2 {
			mid := c.Path[len(c.Path)/2]
			if d := corr.Geometry.DistanceToKm(mid); d > 10 {
				t.Errorf("conduit %d drifts %.1f km from its corridor", i, d)
			}
		}
		// Length is geometric.
		if math.Abs(c.LengthKm-c.Path.LengthKm()) > 1e-6 {
			t.Errorf("conduit %d length inconsistent", i)
		}
	}
}

func TestIntegrationTenancyConsistency(t *testing.T) {
	s := study(t)
	m := s.Map()
	// Published tenants come only from mapped providers; totals agree
	// with LinkCount; no tenant is both hidden and published.
	links := 0
	for i := range m.Conduits {
		c := &m.Conduits[i]
		links += len(c.Tenants)
		for _, h := range c.Hidden {
			if c.HasTenant(h) {
				t.Errorf("conduit %d: %s both hidden and published", i, h)
			}
		}
		for j := 1; j < len(c.Tenants); j++ {
			if c.Tenants[j-1] >= c.Tenants[j] {
				t.Errorf("conduit %d tenants not sorted/unique", i)
			}
		}
	}
	if links != m.LinkCount() {
		t.Errorf("links sum %d != LinkCount %d", links, m.LinkCount())
	}
	// ConduitsOf inverts tenancy exactly.
	for _, isp := range m.ISPs() {
		for _, cid := range m.ConduitsOf(isp) {
			if !m.Conduit(cid).HasTenant(isp) {
				t.Fatalf("ConduitsOf(%s) includes conduit %d without tenancy", isp, cid)
			}
		}
	}
}

func TestIntegrationRiskMatrixAgreesWithMap(t *testing.T) {
	s := study(t)
	m := s.Map()
	mx := s.RiskMatrix()
	for i := range m.Conduits {
		c := &m.Conduits[i]
		if len(c.Tenants) == 0 {
			continue
		}
		if got := mx.Sharing(c.ID); got != len(c.Tenants) {
			t.Errorf("conduit %d sharing %d != tenants %d", i, got, len(c.Tenants))
		}
	}
	// Figure 6's k=1 count equals the tenanted-conduit count.
	if counts := mx.SharingCounts(); counts[0] != m.Stats().Conduits {
		t.Errorf("matrix k=1 count %d != map conduits %d", counts[0], m.Stats().Conduits)
	}
}

func TestIntegrationCampaignRespectsMap(t *testing.T) {
	s := study(t)
	camp := s.Campaign()
	m := s.Map()
	// Every probed conduit exists and is tenanted (the overlay maps
	// onto lit conduits only).
	for cid, d := range camp.ConduitProbes {
		if int(cid) >= len(m.Conduits) {
			t.Fatalf("probed conduit %d does not exist", cid)
		}
		if len(m.Conduit(cid).Tenants) == 0 {
			t.Errorf("probed conduit %d is unlit", cid)
		}
		if d.Total() <= 0 {
			t.Errorf("conduit %d has zero probes but is recorded", cid)
		}
	}
	// Inferred tenants include hidden ground-truth providers
	// somewhere (Figure 9's whole point).
	foundHidden := false
	for cid, tenants := range camp.InferredTenants {
		for isp := range tenants {
			if !m.Conduit(cid).HasTenant(isp) {
				foundHidden = true
			}
		}
	}
	if !foundHidden {
		t.Error("overlay never revealed an unpublished tenant")
	}
}

func TestIntegrationRecordsDescribeTruth(t *testing.T) {
	s := study(t)
	res := s.Result()
	// Every corpus reference corresponds to a corridor with at least
	// one ground-truth tenant, and the truth tenants are providers.
	providers := make(map[string]bool)
	for name := range res.Truth {
		providers[name] = true
	}
	for _, ref := range res.Corpus.Refs() {
		tenants := res.Corpus.TrueTenants(ref)
		if len(tenants) == 0 {
			t.Errorf("ref %v has no tenants", ref)
		}
		for _, isp := range tenants {
			if !providers[isp] {
				t.Errorf("ref %v names unknown provider %q", ref, isp)
			}
		}
	}
	// Validation evidence resolves to real documents mentioning the
	// queried entities.
	inf := records.NewInference(res.Index)
	checked := 0
	for _, ref := range res.Corpus.Refs() {
		tenants := res.Corpus.TrueTenants(ref)
		if docID, ok := inf.Validate(ref, tenants[0], 8); ok {
			doc := res.Index.Doc(docID)
			text := strings.ToLower(doc.Title + " " + doc.Body)
			city := strings.ToLower(strings.Split(ref.A, ",")[0])
			if !strings.Contains(text, city) {
				t.Errorf("evidence doc %d does not mention %q", docID, city)
			}
			checked++
		}
		if checked > 25 {
			break
		}
	}
	if checked == 0 {
		t.Error("no validations succeeded at all")
	}
}

func TestIntegrationRobustnessPathsExist(t *testing.T) {
	s := study(t)
	m := s.Map()
	mx := s.RiskMatrix()
	// Re-running the framework on a single target must produce
	// consistent SRR: never negative, never more than the target's own
	// sharing.
	targets := mx.TopShared(3)
	rows := mitigate.RobustnessSuggestion(m, mx, targets, 3)
	maxSharing := 0
	for _, cid := range targets {
		if sh := mx.Sharing(cid); sh > maxSharing {
			maxSharing = sh
		}
	}
	for _, r := range rows {
		if r.Evaluated == 0 {
			continue
		}
		if r.SRR.Max > float64(maxSharing) {
			t.Errorf("%s SRR.Max %v exceeds any target's sharing %d", r.ISP, r.SRR.Max, maxSharing)
		}
		if r.SRR.Min < 0 || r.PI.Min < 0 {
			t.Errorf("%s negative stats: %+v %+v", r.ISP, r.SRR, r.PI)
		}
	}
}

func TestIntegrationLatencyAgainstDirectComputation(t *testing.T) {
	s := study(t)
	m := s.Map()
	// For a few pairs, the study's BestMs must equal an independent
	// shortest-path computation.
	study := s.Latency()
	g := m.Graph()
	for i, pl := range study {
		if i >= 10 {
			break
		}
		p, ok := g.ShortestPath(int(pl.A), int(pl.B), m.LitWeight())
		if !ok {
			t.Fatalf("pair %d unreachable", i)
		}
		want := p.Weight / 204.2
		if math.Abs(pl.BestMs-want)/want > 0.01 {
			t.Errorf("pair %d best %.3f ms != direct %.3f ms", i, pl.BestMs, want)
		}
	}
}

func TestIntegrationAdditionsAreNewConduits(t *testing.T) {
	s := study(t)
	m := s.Map()
	add := s.Additions()
	seen := make(map[[2]fiber.NodeID]bool)
	for _, ad := range add.Additions {
		key := [2]fiber.NodeID{ad.A, ad.B}
		if ad.A > ad.B {
			key = [2]fiber.NodeID{ad.B, ad.A}
		}
		if seen[key] {
			t.Errorf("addition %v chosen twice", key)
		}
		seen[key] = true
		if len(m.ConduitsBetween(ad.A, ad.B)) != 0 {
			t.Errorf("addition %v duplicates existing conduit", key)
		}
		gc := m.Node(ad.A).Loc.DistanceKm(m.Node(ad.B).Loc)
		if math.Abs(gc-ad.LengthKm) > 1 {
			t.Errorf("addition length %.1f != great circle %.1f", ad.LengthKm, gc)
		}
	}
}

func TestIntegrationRiskSubsetConsistency(t *testing.T) {
	s := study(t)
	m := s.Map()
	// A matrix over a subset of ISPs must never report more sharing
	// than the full matrix.
	full := s.RiskMatrix()
	sub := risk.Build(m, []string{"Level 3", "AT&T", "Sprint", "Verizon"})
	for _, cid := range sub.TopShared(50) {
		if sub.Sharing(cid) > full.Sharing(cid) {
			t.Errorf("conduit %d: subset sharing %d > full %d", cid, sub.Sharing(cid), full.Sharing(cid))
		}
	}
}

func TestIntegrationDatasetRoundTrip(t *testing.T) {
	s := study(t)
	path := filepath.Join(t.TempDir(), "map.txt")
	if err := s.ExportDataset(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := fiber.ReadMap(f)
	if err != nil {
		t.Fatal(err)
	}
	// The reloaded map supports the same analyses with identical
	// results: stats and the risk matrix must agree.
	a, b := s.Map().Stats(), got.Stats()
	a.TotalKm, b.TotalKm = 0, 0 // coordinate rounding shifts lengths by metres
	if a != b {
		t.Fatalf("stats differ after round trip:\n%+v\n%+v", a, b)
	}
	mxA := risk.Build(s.Map(), nil)
	mxB := risk.Build(got, nil)
	for i, c := range mxA.SharingCounts() {
		if mxB.SharingCounts()[i] != c {
			t.Fatalf("sharing counts differ at k=%d", i+1)
		}
	}
}
