package intertubes

import (
	"fmt"
	"strings"

	"intertubes/internal/mapbuilder"
	"intertubes/internal/records"
	"intertubes/internal/risk"
)

// titleii.go turns the paper's §6.2 policy discussion into an
// experiment. The FCC's Title II reclassification entitles third
// parties to existing essential infrastructure — poles, ducts,
// conduits — so new entrants (the paper names Google's fiber
// deployment) would pull fiber through the incumbents' tubes rather
// than dig their own. The paper argues this trades deployment cost
// against "an increasingly vulnerable national long-haul fiber-optic
// infrastructure". Here we quantify that trade: rebuild the map with
// k additional entrants that enjoy mandated conduit access, and
// measure how much the shared-risk distribution degrades.

// TitleIIResult compares the baseline map with the post-entry map.
type TitleIIResult struct {
	Entrants []string
	// MeanSharing is the average tenant count over all conduits,
	// before and after entry.
	BaselineMeanSharing float64
	ScenarioMeanSharing float64
	// Tail counts conduits shared by at least 15 of the incumbent 20
	// (the §5 target set's scale), before and after.
	BaselineTail int
	ScenarioTail int
	// IncumbentMeanRise is the average increase in the incumbents'
	// Figure 7 means.
	IncumbentMeanRise float64
	// NewConduits counts conduits the entrants created that did not
	// exist in the baseline (under Title II economics this stays
	// small: entrants ride existing tubes).
	NewConduits int
}

// TitleIIScenario rebuilds the study's map with n new entrants that
// deploy under mandated-access economics (they always take the
// cheapest — most shared — trench; JitterAmp 0 and late build order
// give them the full occupancy discount).
func (s *Study) TitleIIScenario(n int) TitleIIResult {
	if n <= 0 {
		n = 3
	}
	profiles := mapbuilder.Profiles()
	var entrants []string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("Entrant-%d", i+1)
		entrants = append(entrants, name)
		profiles = append(profiles, mapbuilder.Profile{
			Name:     name,
			Tier:     mapbuilder.Tier1,
			Geocoded: true,
			// Entrants serve major metros first (the paper's broadband
			// build-out) and never deviate from existing trenches.
			POPTarget:  16,
			Redundancy: 0.15,
			JitterAmp:  0.01,
		})
	}
	scenario := mapbuilder.BuildWithProfiles(mapbuilder.Options{
		Seed:    s.opts.Seed,
		Records: s.recordsOptions(),
	}, profiles)

	baseMx := s.mx
	// Compare sharing over the incumbent universe in both worlds: the
	// scenario matrix includes entrants as tenants, which is the point
	// — their presence raises every shared conduit's risk.
	scenMx := risk.Build(scenario.Map, nil)

	out := TitleIIResult{
		Entrants:            entrants,
		BaselineMeanSharing: baseMx.MeanSharing(),
		ScenarioMeanSharing: scenMx.MeanSharing(),
		BaselineTail:        len(baseMx.SharedAtLeast(15)),
		ScenarioTail:        len(scenMx.SharedAtLeast(15)),
	}

	// Per-incumbent Figure 7 rise.
	baseMean := make(map[string]float64)
	for _, r := range baseMx.Ranking() {
		baseMean[r.ISP] = r.Mean
	}
	var rise float64
	count := 0
	for _, r := range scenMx.Ranking() {
		if b, ok := baseMean[r.ISP]; ok {
			rise += r.Mean - b
			count++
		}
	}
	if count > 0 {
		out.IncumbentMeanRise = rise / float64(count)
	}

	// Conduits that exist only in the scenario.
	baseCorridors := make(map[int]bool)
	for i := range s.res.Map.Conduits {
		if len(s.res.Map.Conduits[i].Tenants) > 0 {
			baseCorridors[s.res.Map.Conduits[i].Corridor] = true
		}
	}
	for i := range scenario.Map.Conduits {
		c := &scenario.Map.Conduits[i]
		if len(c.Tenants) > 0 && !baseCorridors[c.Corridor] {
			out.NewConduits++
		}
	}
	return out
}

// recordsOptions reconstructs the records options the study was built
// with, so scenario rebuilds stay comparable.
func (s *Study) recordsOptions() records.Options {
	return records.Options{
		Coverage:        s.opts.RecordsCoverage,
		TenantRecall:    s.opts.RecordsRecall,
		FalseTenantRate: s.opts.RecordsFalseRate,
		Seed:            s.opts.Seed + 1,
	}
}

// RenderTitleII renders the scenario comparison.
func (s *Study) RenderTitleII(n int) string {
	r := s.TitleIIScenario(n)
	var b strings.Builder
	fmt.Fprintf(&b, "Title II scenario (§6.2): %d new entrants with mandated conduit access\n\n", len(r.Entrants))
	fmt.Fprintf(&b, "  mean conduit sharing:        %.2f -> %.2f (+%.1f%%)\n",
		r.BaselineMeanSharing, r.ScenarioMeanSharing,
		100*(r.ScenarioMeanSharing/r.BaselineMeanSharing-1))
	fmt.Fprintf(&b, "  conduits shared by >=15:     %d -> %d\n", r.BaselineTail, r.ScenarioTail)
	fmt.Fprintf(&b, "  avg incumbent Fig-7 rise:    +%.2f ISPs per conduit\n", r.IncumbentMeanRise)
	fmt.Fprintf(&b, "  new conduits dug by entrants: %d (mandated access makes digging rare)\n\n", r.NewConduits)
	b.WriteString("The paper's §6.2 trade-off, quantified: cheaper entry, but every\n")
	b.WriteString("newly shared tube concentrates more providers behind the same backhoe.\n")
	return b.String()
}
