// Fibercut plays out the scenario behind the paper's risk metrics
// (and its "backhoe: a real cyberthreat" citation): a small number of
// conduits fail at once — a coordinated attack on the most-shared
// trenches, or one regional disaster — and every provider in those
// tubes goes down together. Who can still route?
//
// Usage:
//
//	fibercut [-cuts 6]
package main

import (
	"flag"
	"fmt"

	"intertubes"
	"intertubes/internal/resilience"
)

func main() {
	cuts := flag.Int("cuts", 6, "number of most-shared conduits to cut")
	flag.Parse()

	study := intertubes.NewStudy(intertubes.Options{Seed: 42})
	m := study.Map()
	mx := study.RiskMatrix()

	targets := resilience.TargetedBySharing(mx, *cuts)
	fmt.Printf("cutting the %d most-shared conduits:\n", *cuts)
	for _, cid := range targets {
		c := m.Conduit(cid)
		fmt.Printf("  %-20s - %-20s (%d tenants lose this tube)\n",
			m.Node(c.A).Key(), m.Node(c.B).Key(), mx.Sharing(cid))
	}

	fmt.Println("\nper-provider impact (fraction of its city pairs disconnected):")
	impacts := resilience.CutImpact(m, mx, targets)
	for _, im := range impacts {
		bar := ""
		for i := 0; i < int(im.DisconnectedPairs*40); i++ {
			bar += "#"
		}
		fmt.Printf("  %-18s hit in %2d conduits  %5.1f%% pairs lost  %s\n",
			im.ISP, im.CutsHit, 100*im.DisconnectedPairs, bar)
	}

	random := resilience.RandomCuts(m, mx, *cuts, 10, 99)
	fmt.Printf("\nmean disconnection: %.4f targeted vs %.4f for random cuts (%.1fx)\n",
		resilience.MeanDisconnection(impacts), random,
		resilience.MeanDisconnection(impacts)/random)
	fmt.Println("\nThe same conduits appear in the paper's Figure 6 tail: conduit sharing")
	fmt.Println("concentrates failure impact exactly where the traffic is.")
}
