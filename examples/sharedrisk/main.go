// Sharedrisk audits one provider's shared-risk exposure, the §4
// workflow a network planner would run before a capacity purchase:
// where does my fiber sit, who shares my trenches, which of my routes
// are choke points, and who should I peer with to de-risk them?
//
// Usage:
//
//	sharedrisk [-isp "Sprint"] [-top 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"intertubes"
	"intertubes/internal/fiber"
)

func main() {
	isp := flag.String("isp", "Sprint", "provider to audit")
	top := flag.Int("top", 10, "riskiest conduits to list")
	flag.Parse()

	study := intertubes.NewStudy(intertubes.Options{Seed: 42})
	m := study.Map()
	mx := study.RiskMatrix()

	conduits := m.ConduitsOf(*isp)
	if len(conduits) == 0 {
		log.Fatalf("unknown or unmapped provider %q (try Sprint, Level 3, AT&T, ...)", *isp)
	}

	// Where does this ISP sit in the Figure 7 ranking?
	ranking := mx.Ranking()
	for pos, r := range ranking {
		if r.ISP != *isp {
			continue
		}
		fmt.Printf("%s: %d conduits, average sharing %.2f (rank %d of %d, 1 = least exposed)\n",
			r.ISP, r.Conduits, r.Mean, pos+1, len(ranking))
		fmt.Printf("%d of its %d conduits are shared with at least one other provider\n\n",
			r.SharedConduits, r.Conduits)
	}

	// Its riskiest conduits.
	sort.Slice(conduits, func(i, j int) bool {
		si, sj := mx.Sharing(conduits[i]), mx.Sharing(conduits[j])
		if si != sj {
			return si > sj
		}
		return conduits[i] < conduits[j]
	})
	fmt.Printf("top %d riskiest conduits in %s's footprint:\n", *top, *isp)
	for i, cid := range conduits {
		if i >= *top {
			break
		}
		c := m.Conduit(cid)
		fmt.Printf("  %-22s %-22s %4.0f km  shared by %2d ISPs\n",
			m.Node(c.A).Key(), m.Node(c.B).Key(), c.LengthKm, mx.Sharing(cid))
	}

	// The most similar risk profile (Figure 8's reading).
	h := mx.Hamming()
	self := -1
	for i, name := range mx.ISPs {
		if name == *isp {
			self = i
		}
	}
	if self >= 0 {
		best, bestD := -1, 1<<30
		for j := range mx.ISPs {
			if j != self && h[self][j] < bestD {
				best, bestD = j, h[self][j]
			}
		}
		fmt.Printf("\nmost similar risk profile: %s (Hamming distance %d)\n", mx.ISPs[best], bestD)
	}

	// What the §5.1 framework suggests.
	for _, r := range study.Robustness() {
		if r.ISP == *isp && r.Evaluated > 0 {
			fmt.Printf("re-routing its %d most-shared conduits costs %.1f extra hops on average\n",
				r.Evaluated, r.PI.Avg)
			fmt.Printf("and cuts worst-case sharing by %.1f; suggested peers: %v\n",
				r.SRR.Avg, r.SuggestedPeers)
		}
	}

	// Hidden co-tenants revealed by traffic (Figure 9's mechanism).
	camp := study.Campaign()
	hidden := map[string]int{}
	for _, cid := range conduits {
		for other := range camp.InferredTenants[fiber.ConduitID(cid)] {
			if other != *isp && !m.Conduit(cid).HasTenant(other) {
				hidden[other]++
			}
		}
	}
	if len(hidden) > 0 {
		fmt.Printf("\nproviders observed via traceroute in %s's conduits but absent from published maps:\n", *isp)
		names := make([]string, 0, len(hidden))
		for n := range hidden {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return hidden[names[i]] > hidden[names[j]] })
		for _, n := range names {
			fmt.Printf("  %-18s on %d conduits\n", n, hidden[n])
		}
	}
}
