// Quickstart: build the US long-haul fiber map and print the headline
// numbers of the paper — the map structure (Figure 1) and the conduit
// sharing distribution (Figure 6).
package main

import (
	"fmt"

	"intertubes"
)

func main() {
	// A Study is deterministic in its seed; 42 reproduces the numbers
	// in EXPERIMENTS.md.
	study := intertubes.NewStudy(intertubes.Options{Seed: 42})

	fmt.Println(study.RenderFigure1())
	fmt.Println(study.RenderFigure6())

	// The underlying data is available as well.
	stats := study.Map().Stats()
	fmt.Printf("The paper's map: 273 nodes, 2411 links, 542 conduits.\n")
	fmt.Printf("This build:      %d nodes, %d links, %d conduits.\n",
		stats.Nodes, stats.Links, stats.Conduits)
}
