// Planner runs the §5.2 / §6.3 scenario: a consortium (the paper's
// proposed "link exchange" model, an IXP analogue for conduits) has
// budget for k new long-haul conduits. Where should they dig, and who
// benefits?
//
// Usage:
//
//	planner [-k 5] [-budget-km 3000]
package main

import (
	"flag"
	"fmt"
	"sort"

	"intertubes"
	"intertubes/internal/mitigate"
)

func main() {
	k := flag.Int("k", 5, "maximum number of new conduits")
	budgetKm := flag.Float64("budget-km", 3000, "total new fiber budget in km")
	flag.Parse()

	study := intertubes.NewStudy(intertubes.Options{Seed: 42})
	m := study.Map()

	res := mitigate.AddConduits(m, study.RiskMatrix(), mitigate.AddOptions{K: *k})

	fmt.Printf("link-exchange plan (up to %d conduits, %.0f km budget):\n\n", *k, *budgetKm)
	var spent float64
	chosen := 0
	for i, ad := range res.Additions {
		if spent+ad.LengthKm > *budgetKm {
			fmt.Printf("  %2d. %s - %s (%.0f km) -- SKIPPED, over budget\n", i+1,
				m.Node(ad.A).Key(), m.Node(ad.B).Key(), ad.LengthKm)
			continue
		}
		spent += ad.LengthKm
		chosen++
		fmt.Printf("  %2d. dig %s - %s (%.0f km, expected benefit %.2f)\n", i+1,
			m.Node(ad.A).Key(), m.Node(ad.B).Key(), ad.LengthKm, ad.Benefit)
	}
	fmt.Printf("\ntotal new fiber: %.0f km across %d conduits\n\n", spent, chosen)

	// Who benefits, at the full k.
	type gain struct {
		isp string
		v   float64
	}
	var gains []gain
	for isp, series := range res.Improvement {
		if len(series) > 0 {
			gains = append(gains, gain{isp: isp, v: series[len(series)-1]})
		}
	}
	sort.Slice(gains, func(i, j int) bool {
		if gains[i].v != gains[j].v {
			return gains[i].v > gains[j].v
		}
		return gains[i].isp < gains[j].isp
	})
	fmt.Println("shared-risk improvement by provider (Figure 11's reading):")
	for _, g := range gains {
		fmt.Printf("  %-18s %5.1f%%\n", g.isp, 100*g.v)
	}
	fmt.Println("\nAs in the paper, providers with modest US footprints gain the most;")
	fmt.Println("the large incumbents already have diverse paths.")
}
