// Latency reproduces the §5.3 question for a chosen city pair: how
// much faster could this route be if fiber followed the best
// right-of-way, or the line of sight? ("The Internet at the speed of
// light" framing the paper borrows from Singla et al.)
//
// Usage:
//
//	latency [-from "Chicago,IL"] [-to "Denver,CO"]
package main

import (
	"flag"
	"fmt"
	"log"

	"intertubes"
	"intertubes/internal/geo"
	"intertubes/internal/mitigate"
)

func main() {
	from := flag.String("from", "Chicago,IL", "origin city (Name,ST)")
	to := flag.String("to", "Denver,CO", "destination city (Name,ST)")
	flag.Parse()

	study := intertubes.NewStudy(intertubes.Options{Seed: 42})
	m := study.Map()

	a, ok := m.NodeByKey(*from)
	if !ok {
		log.Fatalf("no long-haul node at %q", *from)
	}
	b, ok := m.NodeByKey(*to)
	if !ok {
		log.Fatalf("no long-haul node at %q", *to)
	}

	// One pair, computed directly with the §5.3 machinery.
	g := m.Graph()
	paths := g.KShortestPaths(int(a), int(b), 5, m.LitWeight())
	if len(paths) == 0 {
		log.Fatalf("no lit fiber path between %s and %s", *from, *to)
	}
	fmt.Printf("%s -> %s\n\n", *from, *to)
	fmt.Printf("existing fiber paths (over lit conduits):\n")
	for i, p := range paths {
		fmt.Printf("  %d. %6.0f km  %5.2f ms  via %d conduits\n",
			i+1, p.Weight, geo.FiberLatencyMs(p.Weight), p.Hops())
	}

	los := m.Node(a).Loc.DistanceKm(m.Node(b).Loc)
	fmt.Printf("\nline of sight: %6.0f km  %5.2f ms\n", los, geo.FiberLatencyMs(los))
	fmt.Printf("stretch of best existing path over LOS: %.2fx\n\n",
		paths[0].Weight/los)

	// The full study's summary for context.
	sum := mitigate.Summarize(study.Latency())
	fmt.Printf("across %d major city pairs: best existing path already follows the best ROW\n", sum.Pairs)
	fmt.Printf("for %.0f%% of pairs; the ROW-vs-LOS gap is %.2f ms at the median and %.2f ms at p75\n",
		100*sum.BestEqualsROW, sum.LosGapP50, sum.LosGapP75)
}
