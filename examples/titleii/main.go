// Titleii runs the paper's §6.2 policy question as an experiment: if
// Title II reclassification lets new entrants pull fiber through the
// incumbents' conduits (the paper cites Google's fiber build-out),
// how much does national shared risk rise per entrant?
//
// Usage:
//
//	titleii [-max 5]
package main

import (
	"flag"
	"fmt"

	"intertubes"
)

func main() {
	max := flag.Int("max", 4, "sweep entrants from 1 to this count")
	flag.Parse()

	study := intertubes.NewStudy(intertubes.Options{Seed: 42})

	fmt.Println("Title II entry sweep (each row rebuilds the map with k entrants):")
	fmt.Printf("%-10s %-22s %-22s %s\n", "entrants", "mean sharing", "conduits >=15 shared", "incumbent rise")
	base := study.RiskMatrix().MeanSharing()
	fmt.Printf("%-10d %-22.2f %-22d %s\n", 0, base, len(study.RiskMatrix().SharedAtLeast(15)), "-")
	for k := 1; k <= *max; k++ {
		r := study.TitleIIScenario(k)
		fmt.Printf("%-10d %-22.2f %-22d +%.2f\n",
			k, r.ScenarioMeanSharing, r.ScenarioTail, r.IncumbentMeanRise)
	}
	fmt.Println()
	fmt.Println(study.RenderTitleII(3))
}
