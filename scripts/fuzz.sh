#!/usr/bin/env sh
# fuzz.sh — fuzz-smoke: run every native Go fuzz target for a short,
# bounded burst. This is not a soak; it exists so a corpus-breaking
# regression (a parser that started crashing on garbage) fails CI
# within seconds instead of waiting for a dedicated fuzzing run.
#
#   FUZZTIME=10s sh scripts/fuzz.sh    # per-target budget (default 10s)
set -eu

cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

# Enumerate packages that declare fuzz targets, then run each target
# individually: `go test -fuzz` accepts only one target per invocation.
for pkg in $(go list ./...); do
	targets=$(go test -list '^Fuzz' "$pkg" 2>/dev/null | grep '^Fuzz' || true)
	[ -z "$targets" ] && continue
	for target in $targets; do
		echo "==> fuzz $pkg $target ($FUZZTIME)"
		go test -run '^$' -fuzz "^${target}\$" -fuzztime "$FUZZTIME" "$pkg"
	done
done

echo "fuzz: all targets survived their smoke burst"
