#!/usr/bin/env sh
# verify.sh — the tier-1 gate plus the race detector, in the order a
# reviewer would run them. Fails fast on the first broken step.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

echo "verify: all checks passed"
