#!/usr/bin/env sh
# verify.sh — the tier-1 gate plus the race detector, in the order a
# reviewer would run them. Fails fast on the first broken step.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

# Fuzz smoke is part of the gate unless explicitly skipped
# (SKIP_FUZZ=1 sh scripts/verify.sh) — e.g. on machines where the
# fuzzing engine's per-target startup dominates.
if [ "${SKIP_FUZZ:-0}" != "1" ]; then
	echo "==> fuzz smoke"
	sh scripts/fuzz.sh
fi

echo "verify: all checks passed"
