#!/usr/bin/env sh
# bench.sh — run the benchmark suite and emit a machine-readable
# summary (BENCH_obs.json) via cmd/benchjson.
#
# Usage:
#   scripts/bench.sh                 # all packages, default settings
#   BENCH=Figure1 scripts/bench.sh   # filter by benchmark name
#   BENCHTIME=1x scripts/bench.sh    # quick smoke pass
#   OUT=custom.json scripts/bench.sh
#
# The graph-kernel micro-benchmarks (DijkstraSweep, KShortestPaths,
# EdgeBetweenness) ride along with the figure benchmarks; `make
# bench-smoke` runs just those for one iteration as a CI check.
set -eu

cd "$(dirname "$0")/.."

BENCH="${BENCH:-.}"
BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_obs.json}"

go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -benchmem -json ./... |
	go run ./cmd/benchjson -o "$OUT"
