#!/usr/bin/env sh
# bench.sh — run the benchmark suite and emit a machine-readable
# summary (BENCH_obs.json) via cmd/benchjson.
#
# Usage:
#   scripts/bench.sh                 # all packages, default settings
#   BENCH=Figure1 scripts/bench.sh   # filter by benchmark name
#   BENCHTIME=1x scripts/bench.sh    # quick smoke pass
#   OUT=custom.json scripts/bench.sh
#
#   scripts/bench.sh compare 'LatencyAtlas|MaxFlow'
#       # regression gate: rerun the named benchmarks and fail when
#       # any regresses more than TOLERANCE (default 0.25, i.e. 25%)
#       # in ns/op against the checked-in BENCH_obs.json. Writes a
#       # throwaway summary, never the baseline itself.
#
# The graph-kernel micro-benchmarks (DijkstraSweep, KShortestPaths,
# EdgeBetweenness) ride along with the figure benchmarks; `make
# bench-smoke` runs just those for one iteration as a CI check.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "compare" ]; then
	BENCH="${2:?usage: scripts/bench.sh compare 'BenchName|OtherBench'}"
	BENCHTIME="${BENCHTIME:-1s}"
	BASELINE="${BASELINE:-BENCH_obs.json}"
	TOLERANCE="${TOLERANCE:-0.25}"
	OUT="$(mktemp -t bench_compare.XXXXXX.json)"
	trap 'rm -f "$OUT"' EXIT
	go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -benchmem -json ./... |
		go run ./cmd/benchjson -o "$OUT" -baseline "$BASELINE" -tolerance "$TOLERANCE"
	exit $?
fi

BENCH="${BENCH:-.}"
BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_obs.json}"

go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -benchmem -json ./... |
	go run ./cmd/benchjson -o "$OUT"
